//! The event-driven shard loop: one [`IoBackend`] instance per shard
//! drives every connection the shard owns.
//!
//! Each connection's fd is registered under its slab index; the wake
//! pipe is registered under [`WAKE_TOKEN`]. The loop blocks in
//! `wait` until a socket is ready, a timer-wheel deadline arrives, or
//! someone wakes the shard (new connection handed off, build result
//! deposited, WAL flushed with live subscribers, drain started). An
//! idle shard therefore makes *zero* wakeups — the contrast with the
//! threaded fallback's 2000 ticks per second, and the number the
//! `server.wakeups` counter exists to expose.
//!
//! Timer deadlines are coarse (1ms wheel) one-shot hints: when one
//! fires the connection is re-examined and re-armed from its actual
//! state (see [`Conn::next_deadline`]). Write interest is registered
//! only while a connection has an unwritten backlog, so a writable
//! socket never busy-wakes the shard under level triggering.
//!
//! # The executor thread
//!
//! The event loop itself never waits on an engine lock. Frames whose
//! opcode can acquire locks (DML, reads, index builds — see
//! [`mohan_wire::message::Request::frame_may_block`]) are *checked
//! out*: the connection leaves the slab (fd deregistered) and runs on
//! the shard's executor thread, returning via a channel + wake when
//! its queue drains. Control frames (`Begin`/`Commit`/`Rollback`,
//! stats, subscriptions) run inline — they only ever *release* locks,
//! and keeping them runnable is what breaks the classic stall: one
//! connection's lock wait must not block the loop that would service
//! the peer's `Commit` holding the contended lock.

use super::timer::TimerWheel;
use super::{Event, Interest, IoBackend, ResolvedBackend, WAKE_TOKEN};
use crate::worker::{self, Conn, ShardCtx};
use crate::Inner;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Wheel granularity: deadlines here bound 25ms+ intervals and
/// multi-second timeouts, not request latency.
const TIMER_GRANULARITY: Duration = Duration::from_millis(1);

/// While draining, cap the wait so drain progress (grace expiry,
/// write timeouts) is re-checked promptly even with no events.
const DRAIN_TICK: Duration = Duration::from_millis(5);

/// A slab entry: present on this loop, or checked out to the
/// executor thread (fd deregistered, token parked).
// Connections live inline in the slab; `Out` is a transient
// placeholder, so the size skew is intentional (boxing would cost an
// allocation per checkout round-trip).
#[allow(clippy::large_enum_variant)]
enum Slot {
    Live(Conn),
    Out,
}

/// Connection storage keyed by reactor token. Indexes are reused via
/// a free list, so tokens stay small and dense. Checked-out
/// connections keep their token (and count as live) so events, timer
/// fires, and reuse can't alias them while they are away.
struct Slab {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(Slot::Live(conn));
                i
            }
            None => {
                self.slots.push(Some(Slot::Live(conn)));
                self.slots.len() - 1
            }
        }
    }

    /// The connection at `token`, unless absent or checked out.
    fn get_mut(&mut self, token: usize) -> Option<&mut Conn> {
        match self.slots.get_mut(token) {
            Some(Some(Slot::Live(conn))) => Some(conn),
            _ => None,
        }
    }

    /// Take the connection out for the executor, leaving the token
    /// parked.
    fn check_out(&mut self, token: usize) -> Option<Conn> {
        let slot = self.slots.get_mut(token)?;
        match slot.take() {
            Some(Slot::Live(conn)) => {
                *slot = Some(Slot::Out);
                Some(conn)
            }
            other => {
                *slot = other;
                None
            }
        }
    }

    /// Put a returned connection back under its parked token.
    fn check_in(&mut self, token: usize, conn: Conn) -> &mut Conn {
        debug_assert!(matches!(self.slots[token], Some(Slot::Out)));
        self.slots[token] = Some(Slot::Live(conn));
        match self.slots[token] {
            Some(Slot::Live(ref mut c)) => c,
            _ => unreachable!(),
        }
    }

    /// Remove a live connection (reaping).
    fn remove(&mut self, token: usize) -> Option<Conn> {
        match self.slots.get_mut(token)?.take() {
            Some(Slot::Live(conn)) => {
                self.free.push(token);
                self.live -= 1;
                Some(conn)
            }
            other => {
                self.slots[token] = other;
                None
            }
        }
    }

    /// Free a parked token whose returned connection was reaped by
    /// the caller instead of checked back in.
    fn release_out(&mut self, token: usize) {
        debug_assert!(matches!(self.slots[token], Some(Slot::Out)));
        self.slots[token] = None;
        self.free.push(token);
        self.live -= 1;
    }

    /// Tokens of connections present on this loop (not checked out).
    fn tokens(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Some(Slot::Live(_)) => Some(i),
            _ => None,
        })
    }

    fn live_conns(&mut self) -> impl Iterator<Item = &mut Conn> {
        self.slots.iter_mut().filter_map(|s| match s {
            Some(Slot::Live(conn)) => Some(conn),
            _ => None,
        })
    }
}

/// Run one shard under a reactor backend. Falls back to the threaded
/// sleep loop if the backend cannot be constructed (e.g. fd
/// exhaustion at startup) — a degraded server beats a dead shard.
pub(crate) fn run(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    rx: &mpsc::Receiver<(TcpStream, crate::pg::ConnKind)>,
    kind: ResolvedBackend,
    wake_rx: UnixStream,
) {
    let mut backend = match super::new_backend(kind) {
        Ok(b) => b,
        Err(e) => {
            inner.db.obs.trace().event(
                "server.reactor_fallback",
                format!("shard {}: {e}", ctx.shard),
                0,
            );
            return worker::worker_loop(inner, ctx, rx);
        }
    };
    if backend
        .register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
        .is_err()
    {
        return worker::worker_loop(inner, ctx, rx);
    }

    // The executor: receives checked-out connections, runs their
    // queued frames (which may sit in lock waits), and hands them
    // back with a wake. One per shard — serial like the loop, but a
    // blocked statement here leaves the loop free to run the commits
    // and rollbacks that unblock it.
    let (exec_tx, exec_rx) = mpsc::channel::<(usize, Conn)>();
    let (ret_tx, ret_rx) = mpsc::channel::<(usize, Conn)>();
    let exec_handle = {
        let inner = Arc::clone(inner);
        let ctx = ctx.clone();
        std::thread::Builder::new()
            .name(format!("oib-exec-{}", ctx.shard))
            .spawn(move || {
                let waker = inner.shard_waker(ctx.shard);
                while let Ok((token, mut conn)) = exec_rx.recv() {
                    worker::run_pending(&inner, &ctx, &mut conn, inner.draining());
                    if ret_tx.send((token, conn)).is_err() {
                        return;
                    }
                    if let Some(w) = &waker {
                        w.wake();
                    }
                }
            })
            .expect("spawn executor thread")
    };

    let mut slab = Slab::new();
    let mut wheel = TimerWheel::new(TIMER_GRANULARITY);
    let mut events: Vec<Event> = Vec::new();
    let mut fired: Vec<usize> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();

    loop {
        let draining = inner.draining();

        // New connections handed off by the accept loop (it wakes us
        // after each send).
        while let Ok((stream, kind)) = rx.try_recv() {
            if draining {
                inner.conn_count.fetch_sub(1, Ordering::AcqRel);
                if matches!(kind, crate::pg::ConnKind::Http) {
                    inner.http_conns.fetch_sub(1, Ordering::AcqRel);
                }
                inner.shard_conns[ctx.shard].fetch_sub(1, Ordering::AcqRel);
                drop(stream); // accepted in the race window; EOF to client
                continue;
            }
            let conn = Conn::new(stream, inner, kind);
            let token = slab.insert(conn);
            let conn = slab.get_mut(token).unwrap();
            let fd = conn.stream.as_raw_fd();
            if backend.register(fd, token, Interest::READ).is_err() {
                let mut conn = slab.remove(token).unwrap();
                worker::reap_conn(inner, ctx, &mut conn);
                continue;
            }
            arm(inner, &mut wheel, conn, token);
        }

        // Connections back from the executor: re-register and resume.
        while let Ok((token, conn)) = ret_rx.try_recv() {
            if let Some(token) = take_back(
                inner,
                ctx,
                &mut slab,
                &mut *backend,
                &mut wheel,
                token,
                conn,
            ) {
                check_out(inner, ctx, &mut slab, &mut *backend, &exec_tx, token);
            }
        }

        let mut timeout = wheel.next_deadline();
        if draining {
            timeout = Some(timeout.map_or(DRAIN_TICK, |t| t.min(DRAIN_TICK)));
        }
        if let Err(e) = backend.wait(&mut events, timeout) {
            // A failing wait would otherwise spin; pace it and keep
            // the shard alive (timers still make progress).
            inner.db.obs.trace().event(
                "server.reactor_wait_error",
                format!("{}: {e}", backend.name()),
                0,
            );
            std::thread::sleep(Duration::from_millis(1));
            events.clear();
        }
        inner.stats.wakeups.bump();
        inner.events_per_wait.record(events.len() as u64);

        let mut woke = false;
        let mut touched = 0u64;
        for &ev in &events {
            if ev.token == WAKE_TOKEN {
                super::drain_wake(&wake_rx);
                woke = true;
                continue;
            }
            touched += 1;
            let mut needs_exec = false;
            {
                let Some(conn) = slab.get_mut(ev.token) else {
                    continue;
                };
                if ev.writable {
                    worker::try_flush(conn);
                    if !conn.has_backlog() {
                        // Socket drained: resume whatever the backlog
                        // had paused.
                        worker::pump_observe(inner, conn);
                        worker::pump_wal_burst(inner, ctx, conn);
                        worker::watch_build(inner, conn);
                    }
                }
                if ev.readable || ev.failed {
                    worker::read_socket(inner, conn);
                    if !conn.dead {
                        needs_exec = worker::run_pending_inline(inner, ctx, conn, draining);
                    }
                }
                if !needs_exec {
                    sync_interest(&mut *backend, conn, ev.token);
                    arm(inner, &mut wheel, conn, ev.token);
                }
            }
            if needs_exec {
                check_out(inner, ctx, &mut slab, &mut *backend, &exec_tx, ev.token);
            }
        }
        // One wait servicing k connections means live−k idle ones
        // were *not* scanned — the work the sleep-poll loop would
        // have done every tick.
        inner
            .stats
            .idle_scan_skipped
            .add((slab.live as u64).saturating_sub(touched));

        if woke {
            // A wake means cross-thread state changed: a build result
            // landed or the WAL flushed past a subscriber. Re-check
            // the connections that can care (new-connection handoff
            // and executor returns were handled at the top).
            let job_tokens: Vec<usize> = slab
                .tokens()
                .filter(|&t| {
                    slab.get(t)
                        .is_some_and(|c| c.has_build() || c.has_wal_sub())
                })
                .collect();
            for token in job_tokens {
                let mut needs_exec = false;
                {
                    let Some(conn) = slab.get_mut(token) else {
                        continue;
                    };
                    if conn.has_build() && worker::watch_build(inner, conn) && !conn.has_build() {
                        // Build finished: queued frames are runnable.
                        needs_exec = worker::run_pending_inline(inner, ctx, conn, draining);
                    }
                    if conn.has_wal_sub() {
                        worker::pump_wal_burst(inner, ctx, conn);
                    }
                    if !needs_exec {
                        sync_interest(&mut *backend, conn, token);
                        arm(inner, &mut wheel, conn, token);
                    }
                }
                if needs_exec {
                    check_out(inner, ctx, &mut slab, &mut *backend, &exec_tx, token);
                }
            }
        }

        wheel.expire(&mut fired);
        for &token in &fired {
            let mut needs_exec = false;
            {
                let Some(conn) = slab.get_mut(token) else {
                    continue;
                };
                conn.timer_at = None;
                // A fired deadline is a hint: run every due-aware
                // check and re-arm from actual state.
                worker::check_write_timeout(inner, conn);
                if !conn.dead {
                    worker::try_flush(conn);
                    if conn.has_build() && worker::watch_build(inner, conn) && !conn.has_build() {
                        needs_exec = worker::run_pending_inline(inner, ctx, conn, draining);
                    }
                    worker::pump_observe(inner, conn);
                    worker::pump_wal_burst(inner, ctx, conn);
                    worker::check_idle(inner, conn);
                }
                if !needs_exec {
                    sync_interest(&mut *backend, conn, token);
                    arm(inner, &mut wheel, conn, token);
                }
            }
            if needs_exec {
                check_out(inner, ctx, &mut slab, &mut *backend, &exec_tx, token);
            }
        }
        fired.clear();

        if draining {
            worker::drain_mark(inner, slab.live_conns());
        }

        dead.extend(
            slab.tokens()
                .filter(|&t| slab.get(t).is_some_and(|c| c.dead)),
        );
        for &token in &dead {
            if let Some(mut conn) = slab.remove(token) {
                let _ = backend.deregister(conn.stream.as_raw_fd());
                worker::reap_conn(inner, ctx, &mut conn);
            }
        }
        dead.clear();

        if draining && slab.live == 0 {
            break;
        }
    }
    // live == 0 means nothing is checked out; closing the channel
    // stops the executor.
    drop(exec_tx);
    let _ = exec_handle.join();
}

impl Slab {
    /// Shared read access (used by token scans).
    fn get(&self, token: usize) -> Option<&Conn> {
        match self.slots.get(token) {
            Some(Some(Slot::Live(conn))) => Some(conn),
            _ => None,
        }
    }
}

/// Hand a connection with lock-acquiring frames queued to the
/// executor thread. If the executor is gone (send fails), run the
/// frames here — correctness over responsiveness.
fn check_out(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    slab: &mut Slab,
    backend: &mut dyn IoBackend,
    exec_tx: &mpsc::Sender<(usize, Conn)>,
    token: usize,
) {
    let Some(mut conn) = slab.check_out(token) else {
        return;
    };
    let _ = backend.deregister(conn.stream.as_raw_fd());
    conn.want_write = false; // no registration while away
    inner.stats.exec_offloads.bump();
    if let Err(mpsc::SendError((token, mut conn))) = exec_tx.send((token, conn)) {
        // Executor unavailable: degrade to inline execution.
        worker::run_pending(inner, ctx, &mut conn, inner.draining());
        let conn = slab.check_in(token, conn);
        if backend
            .register(conn.stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            conn.dead = true;
        }
    }
}

/// Re-admit a connection the executor finished with: re-register its
/// fd, resume anything that advanced while it was away, and re-arm
/// its timer. Returns `Some(token)` when the connection *already*
/// has another lock-acquiring frame queued (pipelined client) and
/// must go straight back out.
fn take_back(
    inner: &Arc<Inner>,
    ctx: &ShardCtx,
    slab: &mut Slab,
    backend: &mut dyn IoBackend,
    wheel: &mut TimerWheel,
    token: usize,
    mut conn: Conn,
) -> Option<usize> {
    // Whatever was armed for this token fired (or will fire stale)
    // while the connection was away.
    conn.timer_at = None;
    conn.want_write = false;
    if conn.dead {
        worker::reap_conn(inner, ctx, &mut conn);
        slab.release_out(token);
        return None;
    }
    let fd = conn.stream.as_raw_fd();
    if backend.register(fd, token, Interest::READ).is_err() {
        conn.dead = true;
        worker::reap_conn(inner, ctx, &mut conn);
        slab.release_out(token);
        return None;
    }
    let conn = slab.check_in(token, conn);
    // Streams and builds may have advanced while the connection was
    // at the executor; catch up now rather than wait for a timer.
    worker::try_flush(conn);
    worker::watch_build(inner, conn);
    worker::pump_observe(inner, conn);
    worker::pump_wal_burst(inner, ctx, conn);
    let needs_exec = worker::run_pending_inline(inner, ctx, conn, inner.draining());
    if needs_exec {
        return Some(token);
    }
    sync_interest(backend, conn, token);
    arm(inner, wheel, conn, token);
    None
}

/// Reconcile registered interest with the connection's actual state:
/// read always, write only while a backlog exists.
fn sync_interest(backend: &mut dyn IoBackend, conn: &mut Conn, token: usize) {
    if conn.dead {
        return;
    }
    let want = conn.has_backlog();
    if want != conn.want_write {
        let interest = if want {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if backend
            .modify(conn.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            conn.want_write = want;
        }
    }
}

/// Arm the wheel for the connection's earliest deadline if nothing
/// earlier is already pending for it. Entries are one-shot and never
/// cancelled; a stale fire is a cheap re-check.
fn arm(inner: &Arc<Inner>, wheel: &mut TimerWheel, conn: &mut Conn, token: usize) {
    if conn.dead {
        return;
    }
    let Some(at) = conn.next_deadline(&inner.cfg) else {
        return;
    };
    if conn.timer_at.is_some_and(|t| t <= at) {
        return; // an earlier (or equal) fire will re-arm from there
    }
    wheel.schedule(at.saturating_duration_since(Instant::now()), token);
    conn.timer_at = Some(at);
}
