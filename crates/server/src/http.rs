//! Dependency-free HTTP/1.1 sidecar: the third front door.
//!
//! Connections accepted on the HTTP listener run the same shard loops
//! as native and pg connections — only the framing differs. Three GET
//! routes, all answerable without touching engine locks (so the
//! reactor event loop serves them inline, never via the executor):
//!
//! * `/metrics` — the engine registry plus the server's own counters
//!   as OpenMetrics text exposition: counters as `_total`, gauges
//!   plain, histograms as cumulative `_bucket{le=...}` series derived
//!   from the log-linear buckets' exact upper bounds.
//! * `/healthz` — process liveness; 200 as long as a worker can
//!   answer at all.
//! * `/readyz` — traffic-worthiness: 503 while draining or while a
//!   replication follower's lag exceeds `max_lag_lsn`, with a
//!   line-per-field body (`role=`, `draining=`, `lag_lsn=`, …) so
//!   probes and humans read the same answer.
//!
//! Requests are admission-exempt: a health probe refused with `Busy`
//! would page an operator about load, which is precisely when probes
//! must keep answering. For the same reason HTTP connections are not
//! reaped by the early drain pass — an orchestrator's probe must be
//! able to observe `ready=false` during the drain window — but each
//! response sent while draining closes its connection, so probes
//! cannot prolong the drain past their own answer.

use crate::worker::{self, Conn};
use crate::Inner;
use std::sync::Arc;
use std::time::Instant;

/// Request head blocks larger than this are refused; GET requests to
/// the three routes fit in a fraction of it.
const MAX_HEADER: usize = 8192;

/// OpenMetrics content type, version pinned for scrapers that
/// negotiate.
const OPENMETRICS_CTYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

const TEXT_CTYPE: &str = "text/plain; charset=utf-8";

/// Split complete request head blocks (terminated by `\r\n\r\n`) off
/// `conn.buf` into `conn.pending`. Bodies are never read: the routes
/// are all GET, and a peer streaming a body just accumulates until
/// the idle timeout or the header cap kills the connection.
pub(crate) fn split_frames(inner: &Arc<Inner>, conn: &mut Conn) {
    while !conn.dead {
        let Some(end) = conn
            .buf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)
        else {
            if conn.buf.len() > MAX_HEADER {
                inner.stats.malformed.bump();
                worker::send_raw(
                    inner,
                    conn,
                    b"HTTP/1.1 431 Request Header Fields Too Large\r\n\
                      content-length: 0\r\nconnection: close\r\n\r\n",
                );
                conn.dead = true;
            }
            return;
        };
        let head: Vec<u8> = conn.buf.drain(..end).collect();
        conn.pending.push_back((head, Instant::now()));
    }
}

/// Answer one request head block. Responses carry `content-length`,
/// so clients know when a response is complete without a close;
/// `Connection: close` (and any response sent while draining) closes
/// after the response flushes.
pub(crate) fn handle_payload(inner: &Arc<Inner>, conn: &mut Conn, payload: &[u8]) {
    let head = String::from_utf8_lossy(payload);
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().unwrap_or("");
    let path = request_line
        .next()
        .unwrap_or("")
        .split('?')
        .next()
        .unwrap_or("");
    let wants_close = lines.any(|l| {
        let l = l.to_ascii_lowercase();
        l.starts_with("connection:") && l.contains("close")
    });

    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            TEXT_CTYPE,
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => ("200 OK", OPENMETRICS_CTYPE, render_metrics(inner)),
            "/healthz" => ("200 OK", TEXT_CTYPE, "ok\n".to_string()),
            "/readyz" => {
                let (ready, body) = readiness(inner);
                let status = if ready {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, TEXT_CTYPE, body)
            }
            _ => ("404 Not Found", TEXT_CTYPE, "not found\n".to_string()),
        }
    };

    let draining = inner.draining();
    let close = wants_close || draining;
    let mut out = format!(
        "HTTP/1.1 {status}\r\ncontent-type: {ctype}\r\ncontent-length: {}\r\n",
        body.len()
    );
    if close {
        out.push_str("connection: close\r\n");
    }
    out.push_str("\r\n");
    out.push_str(&body);
    worker::send_raw(inner, conn, out.as_bytes());
    if close && !conn.has_backlog() {
        conn.dead = true;
    }
}

/// Traffic-worthiness and its explanation. Not ready while draining,
/// and not ready while a follower's replication lag exceeds the
/// configured staleness budget — the same bound follower reads are
/// refused under, so a load balancer stops routing to a replica at
/// exactly the point its reads would start failing with `Stale`.
fn readiness(inner: &Arc<Inner>) -> (bool, String) {
    let draining = inner.draining();
    let is_replica = inner.db.is_replica();
    let lag = inner.db.repl_lag();
    let lagging = is_replica && lag > inner.cfg.max_lag_lsn;
    let ready = !draining && !lagging;
    let body = format!(
        "ready={ready}\nrole={}\ndraining={draining}\nlag_lsn={lag}\nmax_lag_lsn={}\n",
        if is_replica { "replica" } else { "primary" },
        inner.cfg.max_lag_lsn,
    );
    (ready, body)
}

/// `mohan_<name>` with the registry's dotted namespace flattened to
/// exposition-legal underscores.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(6 + name.len());
    out.push_str("mohan_");
    for c in name.chars() {
        out.push(match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => c,
            _ => '_',
        });
    }
    out
}

/// The whole registry plus the server's own counters as OpenMetrics
/// text exposition, `# EOF` terminated.
pub(crate) fn render_metrics(inner: &Arc<Inner>) -> String {
    use std::fmt::Write as _;
    let snap = inner.db.obs.snapshot();
    let mut out = String::new();

    for (name, v) in &snap.counters {
        let m = metric_name(name);
        if snap.is_gauge(name) {
            let _ = writeln!(out, "# TYPE {m} gauge\n{m} {v}");
        } else {
            let _ = writeln!(out, "# TYPE {m} counter\n{m}_total {v}");
        }
    }

    // Server-side counters live outside the registry; `inflight` and
    // the per-shard connection counts are instantaneous levels, the
    // rest only ever increase.
    for (name, v) in inner.stats.snapshot() {
        let m = metric_name(&name);
        if name.starts_with("server.conn_shard.") {
            let _ = writeln!(out, "# TYPE {m} gauge\n{m} {v}");
        } else {
            let _ = writeln!(out, "# TYPE {m} counter\n{m}_total {v}");
        }
    }
    {
        let v = inner.inflight.load(std::sync::atomic::Ordering::Acquire);
        let _ = writeln!(
            out,
            "# TYPE mohan_server_inflight gauge\nmohan_server_inflight {v}"
        );
    }

    for (name, h) in &snap.histograms {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        // Occupied log-linear buckets only, with their exact upper
        // bounds as `le`; the scrape stays compact no matter how wide
        // the value range is (see DESIGN.md §8.5).
        for (le, cum) in h.cumulative() {
            let _ = writeln!(out, "{m}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{m}_count {}", h.count);
        let _ = writeln!(out, "{m}_sum {}", h.sum);
    }

    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_flatten_to_exposition_charset() {
        assert_eq!(metric_name("wal.flush_us"), "mohan_wal_flush_us");
        assert_eq!(
            metric_name("server.req_us.CreateIndex"),
            "mohan_server_req_us_CreateIndex"
        );
        assert_eq!(metric_name("a-b c"), "mohan_a_b_c");
    }
}
