//! Loopback tests for the HTTP sidecar: OpenMetrics exposition on
//! `/metrics`, liveness on `/healthz`, and the two ways `/readyz`
//! goes not-ready — a drain in progress, and a replication follower
//! lagging past its staleness budget.

use mohan_client::Client;
use mohan_common::{EngineConfig, TableId};
use mohan_oib::Db;
use mohan_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const T: TableId = TableId(1);

fn engine(replica: bool) -> Arc<Db> {
    let db = Db::new(EngineConfig {
        replica,
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn http_server(db: &Arc<Db>, cfg: ServerConfig) -> Server {
    Server::start(
        Arc::clone(db),
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            http_bind_addr: Some("127.0.0.1:0".into()),
            ..cfg
        },
    )
    .expect("bind http loopback")
}

/// One HTTP/1.1 response: status line, raw header block, body.
struct HttpReply {
    status: String,
    headers: String,
    body: String,
}

/// Issue `GET path` on an open connection and read the full reply
/// (the sidecar always sends `content-length`). Returns `None` if
/// the server closed before answering.
fn get_on(stream: &mut TcpStream, path: &str) -> Option<HttpReply> {
    let req = format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n");
    stream.write_all(req.as_bytes()).ok()?;
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status = lines.next().expect("status line").to_string();
    let headers: String = lines.collect::<Vec<_>>().join("\r\n");
    let clen: usize = headers
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric content-length");
    let mut body = buf[head_end..].to_vec();
    while body.len() < clen {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => panic!("EOF mid-body"),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    Some(HttpReply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf8 body"),
    })
}

fn connect(srv: &Server) -> TcpStream {
    let addr = srv.http_addr().expect("http listener configured");
    let s = TcpStream::connect(addr).expect("connect http sidecar");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

#[test]
fn metrics_healthz_readyz_answer_over_one_connection() {
    let db = engine(false);
    let srv = http_server(&db, ServerConfig::default());

    // Put some traffic through the front door so counters and
    // histograms are non-trivial.
    let mut c = Client::connect(srv.addr().to_string()).unwrap();
    for k in 0..5 {
        c.insert(T, vec![k, k]).unwrap();
    }

    let mut s = connect(&srv);

    let m = get_on(&mut s, "/metrics").expect("metrics reply");
    assert_eq!(m.status, "HTTP/1.1 200 OK");
    assert!(m.headers.contains("application/openmetrics-text"));
    assert!(m.body.ends_with("# EOF\n"), "exposition is EOF-terminated");
    assert!(m.body.contains("mohan_server_requests_total"));
    assert!(m.body.contains("mohan_server_inflight"));
    // A histogram renders the full series: buckets, +Inf, count, sum.
    assert!(m.body.contains("_bucket{le=\"+Inf\"}"));
    assert!(m.body.contains("# TYPE"));
    // Every line is exposition-shaped: a comment or `name[{...}] value`.
    for line in m.body.lines() {
        assert!(
            line.starts_with('#') || line.split(' ').count() == 2,
            "unparseable exposition line: {line:?}"
        );
    }

    // Keep-alive: the same connection answers again.
    let h = get_on(&mut s, "/healthz").expect("healthz reply");
    assert_eq!(h.status, "HTTP/1.1 200 OK");
    assert_eq!(h.body, "ok\n");

    let r = get_on(&mut s, "/readyz").expect("readyz reply");
    assert_eq!(r.status, "HTTP/1.1 200 OK");
    assert!(r.body.contains("ready=true"));
    assert!(r.body.contains("role=primary"));

    let nf = get_on(&mut s, "/nope").expect("404 reply");
    assert_eq!(nf.status, "HTTP/1.1 404 Not Found");

    srv.drain();
}

#[test]
fn readyz_flips_on_a_lagging_follower() {
    let db = engine(true);
    let srv = http_server(
        &db,
        ServerConfig {
            max_lag_lsn: 5,
            ..ServerConfig::default()
        },
    );
    let mut s = connect(&srv);

    db.set_repl_lag(10);
    let r = get_on(&mut s, "/readyz").expect("readyz reply");
    assert_eq!(r.status, "HTTP/1.1 503 Service Unavailable");
    assert!(r.body.contains("ready=false"));
    assert!(r.body.contains("role=replica"));
    assert!(r.body.contains("lag_lsn=10"));
    assert!(r.body.contains("max_lag_lsn=5"));

    db.set_repl_lag(0);
    let r = get_on(&mut s, "/readyz").expect("readyz reply");
    assert_eq!(r.status, "HTTP/1.1 200 OK");
    assert!(r.body.contains("ready=true"));

    srv.drain();
}

#[test]
fn readyz_flips_during_drain_and_probes_survive_the_early_reap() {
    let db = engine(false);
    let srv = http_server(
        &db,
        ServerConfig {
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    );

    // Pre-connect the probe, then widen the drain window with an open
    // transaction on a native connection.
    let mut probe = connect(&srv);
    let mut holder = Client::connect(srv.addr().to_string()).unwrap();
    holder.begin().unwrap();
    holder.insert(T, vec![1, 1]).unwrap();

    let drainer = std::thread::spawn(move || srv.drain());

    // The pre-drain connection keeps answering (HTTP probes are
    // exempt from the early reap) until it observes not-ready; that
    // draining response closes it.
    let mut saw_draining = false;
    for _ in 0..200 {
        let Some(r) = get_on(&mut probe, "/readyz") else {
            break;
        };
        if r.status.starts_with("HTTP/1.1 503") {
            assert!(r.body.contains("ready=false"));
            assert!(r.body.contains("draining=true"));
            assert!(r.headers.to_ascii_lowercase().contains("connection: close"));
            saw_draining = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_draining, "probe never observed the drain");

    // Release the transaction so the drain can finish.
    drop(holder);
    let report = drainer.join().unwrap();
    assert!(report.conns_closed >= 1);
}
