//! End-to-end loopback tests: real TCP connections driving the engine
//! through the wire protocol.
//!
//! The centrepiece is the ISSUE's acceptance scenario: 8 concurrent
//! client connections run DML while a `CreateIndex` (SF) request on a
//! ninth connection streams `BuildProgress` frames; the finished index
//! must match an offline-built oracle entry-for-entry, and a graceful
//! drain issued mid-load must lose no committed write — verified by
//! crashing and recovering the engine afterwards.

use mohan_btree::scan::collect_all;
use mohan_client::{Client, ClientError, Pool};
use mohan_common::{EngineConfig, IndexEntry, IndexId, KeyValue, TableId};
use mohan_oib::build::{build_index, IndexSpec};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_server::{Server, ServerConfig};
use mohan_wire::frame::{read_frame, write_frame};
use mohan_wire::message::{
    BuildAlgo, BuildOptionsWire, BuildPhase, ErrorCode, IndexSpecWire, Request, Response,
};
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const T: TableId = TableId(1);

fn engine(lock_timeout_ms: u64) -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn seed(db: &Arc<Db>, n: i64) {
    let tx = db.begin();
    for k in 0..n {
        db.insert_record(tx, T, &Record(vec![k, 0])).unwrap();
    }
    db.commit(tx).unwrap();
}

fn server(db: &Arc<Db>, cfg: ServerConfig) -> Server {
    Server::start(Arc::clone(db), cfg).expect("bind loopback")
}

fn addr_of(server: &Server) -> String {
    server.addr().to_string()
}

/// Live (non-pseudo-deleted) entries of an index.
fn live_entries(db: &Arc<Db>, id: IndexId) -> Vec<IndexEntry> {
    let idx = db.index(id).expect("index");
    collect_all(&idx.tree, true)
        .expect("tree scan")
        .into_iter()
        .filter(|(_, pseudo)| !pseudo)
        .map(|(e, _)| e)
        .collect()
}

#[test]
fn dml_and_errors_over_the_wire() {
    let db = engine(2_000);
    seed(&db, 10);
    let srv = server(&db, ServerConfig::default());
    let mut c = Client::connect(addr_of(&srv)).unwrap();

    c.ping().unwrap();

    // Auto-commit DML round-trip.
    let rid = c.insert(T, vec![100, 7]).unwrap();
    assert_eq!(c.read(T, rid).unwrap(), vec![100, 7]);
    c.update(T, rid, vec![100, 8]).unwrap();
    assert_eq!(c.read(T, rid).unwrap(), vec![100, 8]);
    c.delete(T, rid).unwrap();
    match c.read(T, rid) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("expected NotFound, got {other:?}"),
    }

    // Explicit transaction: rollback undoes both statements.
    c.begin().unwrap();
    let r1 = c.insert(T, vec![200, 1]).unwrap();
    c.insert(T, vec![201, 1]).unwrap();
    c.rollback().unwrap();
    match c.read(T, r1) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("expected NotFound after rollback, got {other:?}"),
    }

    // Session state machine errors map onto structured codes.
    match c.commit() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NoOpenTx),
        other => panic!("expected NoOpenTx, got {other:?}"),
    }
    c.begin().unwrap();
    match c.begin() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TxAlreadyOpen),
        other => panic!("expected TxAlreadyOpen, got {other:?}"),
    }
    c.commit().unwrap();

    // Lookup against a nonexistent index.
    match c.lookup(IndexId(99), &KeyValue::from_i64(1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::NoSuchIndex),
        other => panic!("expected NoSuchIndex, got {other:?}"),
    }

    // Stats include server counters and engine gauges.
    let stats = c.stats().unwrap();
    let get = |name: &str| {
        stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("stat {name} missing"))
            .1
    };
    assert!(get("server.requests") >= 10);
    assert_eq!(get("engine.active_txs"), 0);

    drop(c);
    let report = srv.drain();
    assert_eq!(report.rolled_back, 0);
}

#[test]
fn pool_reuses_connections() {
    let db = engine(2_000);
    seed(&db, 5);
    let srv = server(&db, ServerConfig::default());
    let pool = Pool::new(&addr_of(&srv), 4);
    {
        let mut a = pool.get().unwrap();
        a.ping().unwrap();
    }
    assert_eq!(pool.idle_count(), 1);
    {
        let mut b = pool.get().unwrap();
        b.insert(T, vec![50, 0]).unwrap();
    }
    assert_eq!(pool.idle_count(), 1, "same connection must be reused");
    assert_eq!(srv.stats().conns_accepted.get(), 1);
    srv.drain();
}

#[test]
fn malformed_payload_gets_structured_error() {
    let db = engine(2_000);
    let srv = server(&db, ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(srv.addr()).unwrap();
    write_frame(&mut stream, &[0xEE, 1, 2, 3]).unwrap();
    stream.flush().unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
    match resp {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // Framing stayed intact: the connection still serves requests.
    write_frame(&mut stream, &Request::Ping.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
    assert_eq!(resp, Response::Pong);
    srv.drain();
}

#[test]
fn idle_connections_are_reaped() {
    let db = engine(2_000);
    let srv = server(
        &db,
        ServerConfig {
            idle_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );
    let mut c = Client::connect(addr_of(&srv)).unwrap();
    c.ping().unwrap();
    std::thread::sleep(Duration::from_millis(600));
    assert!(c.ping().is_err(), "idle connection must be closed");
    assert!(srv.stats().idle_closed.get() >= 1);
    srv.drain();
}

#[test]
fn admission_control_rejects_over_cap() {
    let db = engine(4_000);
    seed(&db, 3);
    let srv = server(
        &db,
        ServerConfig {
            workers: 3,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    // Connection A parks an X lock on a record inside an open tx.
    let mut a = Client::connect(&addr).unwrap();
    a.begin().unwrap();
    let rid = a.insert(T, vec![1_000, 0]).unwrap();

    // Connection B's delete of the same record blocks on that lock,
    // holding the single in-flight slot while it waits.
    let b_handle = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut b = Client::connect(&addr).unwrap();
            b.delete(T, rid)
        })
    };
    std::thread::sleep(Duration::from_millis(300));

    // Connection C (a third worker shard) is refused immediately.
    let mut c = Client::connect(&addr).unwrap();
    match c.insert(T, vec![2_000, 0]) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy under admission cap, got {other:?}"),
    }

    a.commit().unwrap();
    b_handle.join().unwrap().unwrap();
    assert!(srv.stats().busy_rejects.get() >= 1);
    srv.drain();
}

/// A client that hangs up mid-`CreateIndex` must not leak its
/// admission slot: with `max_inflight = 1` a leak would wedge the
/// server into answering `Busy` forever.
#[test]
fn dropped_connection_mid_build_releases_admission_slot() {
    let db = engine(5_000);
    seed(&db, 2_000);
    let srv = server(
        &db,
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    // Start an SF build on a raw connection and hang up as soon as the
    // server confirms it (the Starting frame): the single in-flight
    // slot is held by the running build at that point.
    let mut stream = std::net::TcpStream::connect(srv.addr()).unwrap();
    let req = Request::CreateIndex {
        table: T.0,
        algo: BuildAlgo::Sf,
        specs: vec![IndexSpecWire {
            name: "ix_orphan".into(),
            key_cols: vec![0],
            unique: false,
        }],
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    stream.flush().unwrap();
    let first = Response::decode(&read_frame(&mut stream).unwrap().unwrap()).unwrap();
    assert!(
        matches!(
            first,
            Response::Progress {
                phase: BuildPhase::Starting,
                ..
            }
        ),
        "expected Starting frame, got {first:?}"
    );
    drop(stream); // client dies while the build thread keeps running

    // The slot comes back when the worker reaps the dead connection,
    // whether or not the detached build has finished by then.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut c = Client::connect(&addr).unwrap();
    loop {
        match c.insert(T, vec![9_999_999, 0]) {
            Ok(_) => break,
            Err(ClientError::Busy) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("admission slot never released: {e}"),
        }
    }
    srv.drain();
}

/// The acceptance scenario from the ISSUE, end to end.
#[test]
fn concurrent_dml_sf_build_streams_progress_and_drain_loses_nothing() {
    const CLIENTS: usize = 8;
    let db = engine(20_000);
    seed(&db, 400);
    let srv = server(
        &db,
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            drain_timeout: Duration::from_secs(20),
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    let stop = Arc::new(AtomicBool::new(false));
    let committed: Arc<Mutex<BTreeSet<i64>>> = Arc::new(Mutex::new(BTreeSet::new()));

    // 8 closed-loop DML clients, each in its own key space. A key goes
    // into `committed` only once its statement's success response (or
    // its transaction's Committed) has been *read back* — exactly the
    // set of writes the drain is not allowed to lose.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let mut c = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => panic!("client {i} connect: {e}"),
                };
                let mut key = 1_000_000 * (i as i64 + 1);
                // Own records as (rid, current key): an update replaces
                // a record's key, so the *old* key rightfully leaves
                // both the table and the committed set.
                let mut mine: Vec<(mohan_common::Rid, i64)> = Vec::new();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    ops += 1;
                    // Mix: mostly auto-commit inserts, some explicit
                    // transactions, some updates of own records.
                    enum Done {
                        Inserted(mohan_common::Rid),
                        Updated(usize, i64),
                    }
                    let result = if ops.is_multiple_of(5) {
                        (|| {
                            c.begin()?;
                            let rid = c.insert(T, vec![key, 1])?;
                            c.commit()?;
                            Ok::<_, ClientError>(Done::Inserted(rid))
                        })()
                    } else if ops.is_multiple_of(7) && !mine.is_empty() {
                        let j = ops as usize % mine.len();
                        c.update(T, mine[j].0, vec![key, 2])
                            .map(|()| Done::Updated(j, mine[j].1))
                    } else {
                        c.insert(T, vec![key, 0]).map(Done::Inserted)
                    };
                    match result {
                        Ok(Done::Inserted(rid)) => {
                            committed.lock().unwrap().insert(key);
                            mine.push((rid, key));
                        }
                        Ok(Done::Updated(j, old_key)) => {
                            let mut set = committed.lock().unwrap();
                            set.remove(&old_key);
                            set.insert(key);
                            drop(set);
                            mine[j].1 = key;
                        }
                        Err(ClientError::Busy) => {
                            key -= 1; // not committed; retry a new op
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(ClientError::Server {
                            code: ErrorCode::Draining,
                            ..
                        }) => break,
                        Err(ClientError::Io(_) | ClientError::Protocol(_)) => break,
                        Err(e) => panic!("client {i} unexpected error: {e}"),
                    }
                }
                ops
            })
        })
        .collect();

    // Let DML traffic establish, then build online over the wire on a
    // ninth connection, collecting the progress stream.
    std::thread::sleep(Duration::from_millis(150));
    let mut builder = Client::connect(&addr).unwrap();
    let mut frames: Vec<(IndexId, BuildPhase, u64)> = Vec::new();
    let ids = builder
        .create_index(
            T,
            BuildAlgo::Sf,
            vec![IndexSpecWire {
                name: "ix_wire".into(),
                key_cols: vec![0],
                unique: false,
            }],
            |id, phase, detail| frames.push((id, phase, detail)),
        )
        .expect("online SF build over the wire");
    assert_eq!(ids.len(), 1);
    let built = ids[0];
    assert!(
        !frames.is_empty(),
        "CreateIndex must stream at least one BuildProgress frame"
    );
    assert_eq!(frames[0].1, BuildPhase::Starting);
    assert_eq!(frames.last().unwrap().1, BuildPhase::Done);

    // Drain mid-load: clients are still hammering the server.
    let report = srv.drain();
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 0, "clients never got any DML through");
    assert_eq!(
        report.builds_abandoned, 0,
        "the build finished before the drain"
    );

    // The drain flushed everything; a crash now must lose nothing.
    db.simulate_crash();
    db.restart().expect("recovery after drained shutdown");

    // Every committed write survived.
    let surviving: BTreeSet<i64> = db
        .table_scan(T)
        .unwrap()
        .into_iter()
        .map(|(_, rec)| rec.0[0])
        .collect();
    let committed = committed.lock().unwrap();
    for key in committed.iter() {
        assert!(
            surviving.contains(key),
            "committed key {key} lost by drain+recovery"
        );
    }
    assert!(committed.len() > 50, "too little traffic to be meaningful");

    // The wire-built index, post-recovery, matches an offline oracle
    // entry-for-entry on the quiescent database.
    verify_index(&db, built).expect("wire-built index verifies");
    let oracle = build_index(
        &db,
        T,
        IndexSpec {
            name: "oracle".into(),
            key_cols: vec![0],
            unique: false,
        },
        BuildAlgorithm::Offline,
    )
    .unwrap();
    assert_eq!(live_entries(&db, built), live_entries(&db, oracle));
}

/// E17 regression: an `ObserveStats` subscription keeps emitting
/// metrics frames while a `CreateIndex` streams progress on another
/// connection, and the frames carry sorted names (so clients can
/// binary-search them).
#[test]
fn observe_stream_emits_beside_a_live_build() {
    let db = engine(5_000);
    seed(&db, 2_000);
    let srv = server(
        &db,
        ServerConfig {
            max_inflight: 4,
            progress_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    let build_done = Arc::new(AtomicBool::new(false));
    let build_done2 = Arc::clone(&build_done);
    let addr2 = addr.clone();
    let builder = std::thread::spawn(move || {
        let mut c = Client::connect(&addr2).unwrap();
        let ids = c
            .create_index(
                T,
                BuildAlgo::Sf,
                vec![IndexSpecWire {
                    name: "ix_observed".into(),
                    key_cols: vec![0],
                    unique: false,
                }],
                |_, _, _| {},
            )
            .unwrap();
        build_done2.store(true, Ordering::Release);
        ids
    });

    // Subscribe while the build runs; keep consuming frames until the
    // build finishes and at least three frames arrived.
    let observer = Client::connect(&addr).unwrap();
    let frames: Arc<Mutex<Vec<mohan_client::MetricsReport>>> = Arc::new(Mutex::new(Vec::new()));
    let frames2 = Arc::clone(&frames);
    observer
        .observe_stats(25, move |report| {
            let mut f = frames2.lock().unwrap();
            f.push(report);
            !(f.len() >= 3 && build_done.load(Ordering::Acquire))
        })
        .unwrap();

    let ids = builder.join().unwrap();
    assert_eq!(ids.len(), 1);
    let frames = frames.lock().unwrap();
    assert!(frames.len() >= 3, "only {} metrics frames", frames.len());
    let last = frames.last().unwrap();
    // Both lists sorted by name — the determinism the satellite asks for.
    assert!(last.counters.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(last.hists.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(last.counter("server.builds_started"), Some(1));
    assert!(last.counter("server.observe_frames").unwrap() >= 3);
    // Engine-side instrumentation crossed the wire: WAL flush latency,
    // cache traffic, the drain-lag gauge, per-opcode latency.
    assert!(last.hist("wal.flush_us").is_some());
    assert!(last.counter("cache.hit").is_some());
    assert!(last.counter("build.drain_lag").is_some());
    assert!(last.hist("server.req_us.ObserveStats").is_some());
    drop(frames);
    srv.drain();
}

/// An observer holds an admission slot like a build does; hanging up
/// must release it through the same reap path, or the server wedges
/// at max_inflight.
#[test]
fn observer_disconnect_releases_its_admission_slot() {
    let db = engine(2_000);
    seed(&db, 10);
    let srv = server(
        &db,
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    let (first_frame_tx, first_frame_rx) = std::sync::mpsc::channel::<()>();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let addr2 = addr.clone();
    let observer = std::thread::spawn(move || {
        let c = Client::connect(&addr2).unwrap();
        c.observe_stats(25, move |_| {
            let _ = first_frame_tx.send(());
            !stop2.load(Ordering::Acquire)
        })
        .unwrap();
    });

    // The stream is live, so the only slot is held: DML gets Busy.
    first_frame_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("no metrics frame arrived");
    let mut c = Client::connect(&addr).unwrap();
    match c.insert(T, vec![1_000, 0]) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy while observer holds the slot, got {other:?}"),
    }

    // Disconnect the observer; the worker's reap must give the slot
    // back even though no response was outstanding.
    stop.store(true, Ordering::Release);
    observer.join().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match c.insert(T, vec![1_001, 0]) {
            Ok(_) => break,
            Err(ClientError::Busy) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("observer slot never released: {e}"),
        }
    }
    srv.drain();
}

/// Reactor regression: idle shards must not tick. Eight parked
/// connections produce (nearly) no events for one second; the wakeup
/// counter may move a handful of times — timer-wheel deadlines, stray
/// wake bytes — but nothing like the ~2 000 ticks per shard per second
/// the sleep-poll loop burns. A ceiling of 200 wakeups over the window
/// sits two orders of magnitude under the threaded rate, so a
/// regression back to tick-polling fails loudly. `Poll` is requested
/// explicitly so a `MOHAN_IO_BACKEND=threaded` test run cannot turn
/// this into a false failure.
#[test]
fn reactor_idle_shards_quiesce() {
    use mohan_common::IoBackendChoice;
    let db = engine(2_000);
    let cfg = ServerConfig {
        io_backend: IoBackendChoice::Poll,
        ..ServerConfig::default()
    };
    let srv = match Server::start(Arc::clone(&db), cfg) {
        Ok(s) => s,
        // A host without a readiness backend has nothing to regress.
        Err(_) => return,
    };
    let addr = addr_of(&srv);
    let mut conns: Vec<Client> = (0..8).map(|_| Client::connect(&addr).unwrap()).collect();
    for c in &mut conns {
        c.ping().unwrap();
    }

    // Let the post-ping readiness edges settle, then watch a quiet
    // second.
    std::thread::sleep(Duration::from_millis(200));
    let before = srv.stats().wakeups.get();
    std::thread::sleep(Duration::from_secs(1));
    let woke = srv.stats().wakeups.get() - before;
    assert!(
        woke < 200,
        "idle shards woke {woke} times in 1s; reactor is tick-polling"
    );

    // Quiescent, not dead: every connection still answers.
    for c in &mut conns {
        c.ping().unwrap();
    }
    srv.drain();
}

/// `CreateIndexV2` round-trip: `BuildOptions` chosen client-side
/// reach the engine (the `build.sort_workers` gauge reports the
/// requested parallelism, the compressed-run gauges account spilled
/// bytes), the built index verifies, and the old tag-10 `CreateIndex`
/// still works beside it on the same server.
#[test]
fn create_index_v2_options_reach_the_engine() {
    let db = engine(5_000);
    seed(&db, 1_500);
    let srv = server(&db, ServerConfig::default());
    let addr = addr_of(&srv);

    let mut c = Client::connect(&addr).unwrap();
    let mut frames = 0u32;
    let ids = c
        .create_index_with(
            T,
            BuildAlgo::Sf,
            vec![IndexSpecWire {
                name: "ix_v2".into(),
                key_cols: vec![0],
                unique: false,
            }],
            BuildOptionsWire {
                parallel_workers: 4,
                compress_runs: true,
                ..BuildOptionsWire::default()
            },
            |_, _, _| frames += 1,
        )
        .expect("parallel compressed build over CreateIndexV2");
    assert_eq!(ids.len(), 1);
    assert!(frames > 0, "V2 streams BuildProgress like tag-10 does");
    verify_index(&db, ids[0]).unwrap();

    let report = c.metrics().unwrap();
    let get = |name: &str| {
        report
            .counter(name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
    };
    assert_eq!(get("build.sort_workers"), 4, "requested parallelism");
    let raw = get("build.run_bytes");
    let stored = get("build.run_bytes_compressed");
    assert!(raw > 0, "spilled run bytes accounted");
    assert!(stored < raw, "compression shrank runs: {stored} < {raw}");

    // Empty spec lists refuse with the structured InvalidArg code
    // instead of a protocol error, and the connection survives.
    match c.create_index_with(
        T,
        BuildAlgo::Sf,
        vec![],
        BuildOptionsWire::default(),
        |_, _, _| {},
    ) {
        Err(ClientError::Server {
            code: ErrorCode::InvalidArg { msg },
            ..
        }) => assert!(msg.contains("spec"), "{msg}"),
        other => panic!("expected InvalidArg, got {other:?}"),
    }
    c.ping().unwrap();

    // The v1 request still builds on the same server.
    let ids = c
        .create_index(
            T,
            BuildAlgo::Sf,
            vec![IndexSpecWire {
                name: "ix_v1".into(),
                key_cols: vec![1],
                unique: false,
            }],
            |_, _, _| {},
        )
        .expect("legacy CreateIndex beside V2");
    verify_index(&db, ids[0]).unwrap();
    srv.drain();
}
