//! Postgres-protocol conformance suite: a raw byte-level pg client
//! (hand-rolled here, deliberately *not* reusing the `mohan-pgwire`
//! encoders, so a codec bug cannot cancel itself out) drives a full
//! simple-query session against the server's pg listener.
//!
//! The centrepiece mirrors the native loopback suite's acceptance
//! scenario, now over SQL: startup → `CREATE TABLE` → concurrent
//! `INSERT` load → online `CREATE INDEX` mid-load (NOTICE progress
//! lines) → `SELECT` through the new index → `Terminate`, with the
//! finished index verified against the heap oracle. Replica gating
//! (`25006`/`72000`), transaction-status bytes, failed-transaction
//! blocks, and garbage-frame robustness are covered alongside.

use mohan_common::{EngineConfig, TableId};
use mohan_oib::verify::verify_index;
use mohan_oib::{Db, IndexState};
use mohan_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn engine() -> Arc<Db> {
    Db::new(EngineConfig {
        lock_timeout_ms: 5_000,
        ..EngineConfig::small()
    })
}

fn pg_server(db: &Arc<Db>, workers: usize) -> Server {
    Server::start(
        Arc::clone(db),
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            pg_bind_addr: Some("127.0.0.1:0".into()),
            workers,
            max_inflight: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind pg loopback")
}

/// One backend message: type byte + body (length prefix stripped).
#[derive(Debug, Clone)]
struct Msg {
    typ: u8,
    body: Vec<u8>,
}

/// Minimal byte-level Postgres v3 client.
struct PgConn {
    stream: TcpStream,
}

impl PgConn {
    /// Connect and run the startup exchange, consuming everything up
    /// to the first `ReadyForQuery`.
    fn connect(addr: &str) -> PgConn {
        let stream = TcpStream::connect(addr).expect("connect pg listener");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut conn = PgConn { stream };
        // Startup packet: total length (incl. itself), protocol
        // 3.0, then key\0value\0 pairs and a terminator.
        let mut params = Vec::new();
        for (k, v) in [("user", "conformance"), ("database", "oib")] {
            params.extend_from_slice(k.as_bytes());
            params.push(0);
            params.extend_from_slice(v.as_bytes());
            params.push(0);
        }
        params.push(0);
        let len = 4 + 4 + params.len();
        let mut pkt = Vec::with_capacity(len);
        pkt.extend_from_slice(&(len as u32).to_be_bytes());
        pkt.extend_from_slice(&196_608u32.to_be_bytes()); // 3 << 16
        pkt.extend_from_slice(&params);
        conn.stream.write_all(&pkt).unwrap();
        let greeting = conn.read_until_ready();
        assert_eq!(
            greeting.first().map(|m| m.typ),
            Some(b'R'),
            "AuthenticationOk first"
        );
        assert_eq!(
            &greeting[0].body,
            &0u32.to_be_bytes(),
            "trustful AuthenticationOk"
        );
        assert!(
            greeting.iter().any(|m| m.typ == b'S'),
            "at least one ParameterStatus"
        );
        assert!(
            greeting.iter().any(|m| m.typ == b'K'),
            "BackendKeyData present"
        );
        conn
    }

    fn read_msg(&mut self) -> Option<Msg> {
        let mut head = [0u8; 5];
        let mut got = 0;
        while got < head.len() {
            match self.stream.read(&mut head[got..]) {
                Ok(0) => return None,
                Ok(n) => got += n,
                Err(e) => panic!("read header: {e}"),
            }
        }
        let typ = head[0];
        let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
        assert!(len >= 4, "length covers itself");
        let mut body = vec![0u8; len - 4];
        let mut got = 0;
        while got < body.len() {
            match self.stream.read(&mut body[got..]) {
                Ok(0) => panic!("EOF mid-message"),
                Ok(n) => got += n,
                Err(e) => panic!("read body: {e}"),
            }
        }
        Some(Msg { typ, body })
    }

    /// Collect messages until `ReadyForQuery` (inclusive).
    fn read_until_ready(&mut self) -> Vec<Msg> {
        let mut msgs = Vec::new();
        loop {
            let msg = self.read_msg().expect("server closed before ReadyForQuery");
            let done = msg.typ == b'Z';
            msgs.push(msg);
            if done {
                return msgs;
            }
        }
    }

    /// Run one simple query and collect its whole reply.
    fn query(&mut self, sql: &str) -> Vec<Msg> {
        let len = 4 + sql.len() + 1;
        let mut pkt = Vec::with_capacity(1 + len);
        pkt.push(b'Q');
        pkt.extend_from_slice(&(len as u32).to_be_bytes());
        pkt.extend_from_slice(sql.as_bytes());
        pkt.push(0);
        self.stream.write_all(&pkt).unwrap();
        self.read_until_ready()
    }

    fn terminate(mut self) {
        self.stream.write_all(&[b'X', 0, 0, 0, 4]).unwrap();
        // A clean Terminate gets no reply: the next read is EOF.
        assert!(self.read_msg().is_none(), "no reply after Terminate");
    }
}

/// The transaction-status byte of the trailing `ReadyForQuery`.
fn tx_status(msgs: &[Msg]) -> u8 {
    let z = msgs.last().expect("non-empty reply");
    assert_eq!(z.typ, b'Z', "reply ends with ReadyForQuery");
    assert_eq!(z.body.len(), 1);
    z.body[0]
}

/// The SQLSTATE of the first `ErrorResponse`, if any.
fn sqlstate(msgs: &[Msg]) -> Option<String> {
    let e = msgs.iter().find(|m| m.typ == b'E')?;
    for field in e.body.split(|&b| b == 0) {
        if field.first() == Some(&b'C') {
            return Some(String::from_utf8(field[1..].to_vec()).unwrap());
        }
    }
    panic!("ErrorResponse without a SQLSTATE field");
}

/// The command tag of the first `CommandComplete`, if any.
fn tag(msgs: &[Msg]) -> Option<String> {
    let c = msgs.iter().find(|m| m.typ == b'C')?;
    let end = c.body.iter().position(|&b| b == 0).unwrap();
    Some(String::from_utf8(c.body[..end].to_vec()).unwrap())
}

/// Decode `DataRow` messages into their text column values.
fn rows(msgs: &[Msg]) -> Vec<Vec<Option<String>>> {
    msgs.iter()
        .filter(|m| m.typ == b'D')
        .map(|m| {
            let body = &m.body;
            let ncols = u16::from_be_bytes([body[0], body[1]]) as usize;
            let mut pos = 2;
            let mut cols = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let len = i32::from_be_bytes(body[pos..pos + 4].try_into().unwrap());
                pos += 4;
                if len < 0 {
                    cols.push(None);
                } else {
                    let v = &body[pos..pos + len as usize];
                    pos += len as usize;
                    cols.push(Some(String::from_utf8(v.to_vec()).unwrap()));
                }
            }
            cols
        })
        .collect()
}

fn expect_tag(msgs: &[Msg], want: &str) {
    assert_eq!(sqlstate(msgs), None, "unexpected error in {msgs:?}");
    assert_eq!(tag(msgs).as_deref(), Some(want));
}

/// The acceptance scenario: a full simple-query session with an
/// online `CREATE INDEX` racing concurrent `INSERT` load, ending in
/// index-vs-heap agreement.
#[test]
fn simple_query_session_with_online_build_under_load() {
    let db = engine();
    let srv = pg_server(&db, 4);
    let addr = srv.pg_addr().expect("pg listener configured").to_string();

    let mut c = PgConn::connect(&addr);
    expect_tag(
        &c.query("CREATE TABLE kv (k BIGINT, v BIGINT)"),
        "CREATE TABLE",
    );
    expect_tag(
        &c.query("INSERT INTO kv (k, v) VALUES (0, 0), (1, 3), (2, 6)"),
        "INSERT 0 3",
    );

    // Concurrent INSERT load on separate pg connections while the
    // index builds online.
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..3)
        .map(|w| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = PgConn::connect(&addr);
                let mut inserted = Vec::new();
                let mut k = 1_000 + w * 100_000;
                while !stop.load(Ordering::Acquire) {
                    let reply = c.query(&format!("INSERT INTO kv VALUES ({k}, {})", k * 3));
                    match sqlstate(&reply).as_deref() {
                        // Admission-control pushback: retry later.
                        Some("53300") => std::thread::sleep(Duration::from_millis(2)),
                        Some(other) => panic!("loader refused with {other}"),
                        None => {
                            assert_eq!(tag(&reply).as_deref(), Some("INSERT 0 1"));
                            inserted.push(k);
                            k += 1;
                        }
                    }
                }
                c.terminate();
                inserted
            })
        })
        .collect();

    // Let the loaders get ahead, then build online, mid-load.
    std::thread::sleep(Duration::from_millis(50));
    let reply = c.query("CREATE INDEX kv_k ON kv USING sf (k)");
    expect_tag(&reply, "CREATE INDEX");
    assert!(
        reply.iter().any(|m| m.typ == b'N'),
        "NOTICE progress lines streamed during the build: {reply:?}"
    );

    // Keep loading briefly after the build completes, then stop.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Release);
    let mut all_keys: Vec<i64> = vec![0, 1, 2];
    for h in loaders {
        all_keys.extend(h.join().expect("loader thread"));
    }

    // SELECT through the new index: point lookups agree with what
    // was inserted (the index-vs-heap oracle, via SQL).
    for &k in all_keys.iter().rev().take(20).chain([&0, &1, &2]) {
        let reply = c.query(&format!("SELECT * FROM kv WHERE k = {k}"));
        let got = rows(&reply);
        assert_eq!(got.len(), 1, "key {k}: {reply:?}");
        assert_eq!(got[0][0].as_deref(), Some(k.to_string().as_str()));
        assert_eq!(tag(&reply).as_deref(), Some("SELECT 1"));
    }
    // A key-range scan through the index.
    let reply = c.query("SELECT * FROM kv WHERE k BETWEEN 0 AND 2");
    assert_eq!(rows(&reply).len(), 3);
    // And a SELECT for an absent key returns zero rows, not an error.
    let reply = c.query("SELECT * FROM kv WHERE k = 987654321");
    assert_eq!(rows(&reply).len(), 0);
    assert_eq!(tag(&reply).as_deref(), Some("SELECT 0"));

    c.terminate();
    srv.drain();

    // Engine-level oracle: the SQL-built index verifies against the
    // heap entry-for-entry, and every inserted key is present.
    let table = TableId(1); // first table the catalog allocates
    let built = db
        .indexes_of(table)
        .into_iter()
        .find(|i| i.def.name == "kv_k")
        .expect("index registered under its SQL name");
    assert_eq!(built.state(), IndexState::Complete);
    assert_eq!(built.def.key_cols, vec![0]);
    verify_index(&db, built.def.id).expect("index agrees with heap");
}

#[test]
fn transaction_blocks_and_failure_states() {
    let db = engine();
    let srv = pg_server(&db, 2);
    let addr = srv.pg_addr().unwrap().to_string();
    let mut c = PgConn::connect(&addr);

    expect_tag(&c.query("CREATE TABLE t (a BIGINT)"), "CREATE TABLE");

    // Empty query: EmptyQueryResponse, idle status.
    let reply = c.query("");
    assert!(reply.iter().any(|m| m.typ == b'I'));
    assert_eq!(tx_status(&reply), b'I');

    // Status byte tracks the open transaction.
    let reply = c.query("BEGIN");
    assert_eq!(tx_status(&reply), b'T');
    let reply = c.query("INSERT INTO t VALUES (1)");
    assert_eq!(tx_status(&reply), b'T');

    // An error inside the block fails it: 'E' status, 25P02 until
    // the block ends, COMMIT reported as ROLLBACK.
    let reply = c.query("INSERT INTO t VALUES (1, 2)"); // arity error
    assert_eq!(sqlstate(&reply).as_deref(), Some("42601"));
    assert_eq!(tx_status(&reply), b'E');
    let reply = c.query("SELECT * FROM t");
    assert_eq!(sqlstate(&reply).as_deref(), Some("25P02"));
    assert_eq!(tx_status(&reply), b'E');
    let reply = c.query("COMMIT");
    assert_eq!(tag(&reply).as_deref(), Some("ROLLBACK"));
    assert_eq!(tx_status(&reply), b'I');

    // The failed block rolled back: no row survives.
    let reply = c.query("SELECT * FROM t");
    assert_eq!(rows(&reply).len(), 0);

    // A clean block commits.
    let reply = c.query("BEGIN; INSERT INTO t VALUES (7); COMMIT");
    assert_eq!(sqlstate(&reply), None);
    assert_eq!(tx_status(&reply), b'I');
    let reply = c.query("SELECT * FROM t WHERE a = 7");
    assert_eq!(rows(&reply).len(), 1);

    // SQL-level errors outside a block leave the session idle.
    let reply = c.query("SELECT * FROM missing");
    assert_eq!(sqlstate(&reply).as_deref(), Some("42P01"));
    assert_eq!(tx_status(&reply), b'I');
    let reply = c.query("DROP TABLE t");
    assert_eq!(sqlstate(&reply).as_deref(), Some("0A000"));

    c.terminate();
    srv.drain();
}

#[test]
fn replica_sessions_map_notwritable_and_stale() {
    let db = Db::new(EngineConfig {
        replica: true,
        ..EngineConfig::small()
    });
    db.create_table(TableId(1));
    let srv = Server::start(
        Arc::clone(&db),
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            pg_bind_addr: Some("127.0.0.1:0".into()),
            workers: 2,
            max_lag_lsn: 100,
            leader_hint: "primary.example:7878".into(),
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");
    let addr = srv.pg_addr().unwrap().to_string();
    let mut c = PgConn::connect(&addr);

    // Writes (and BEGIN) refuse with 25006 and carry the leader hint.
    for sql in [
        "INSERT INTO t1 VALUES (1, 2)",
        "BEGIN",
        "UPDATE t1 SET c1 = 0 WHERE c0 = 1",
        "DELETE FROM t1 WHERE c0 = 1",
        "CREATE INDEX i ON t1 (c0)",
        "CREATE TABLE fresh (k BIGINT)",
    ] {
        let reply = c.query(sql);
        assert_eq!(sqlstate(&reply).as_deref(), Some("25006"), "{sql}");
        let err = reply.iter().find(|m| m.typ == b'E').unwrap();
        let text = String::from_utf8_lossy(&err.body);
        assert!(
            text.contains("primary.example:7878"),
            "leader hint attached: {text}"
        );
    }

    // Reads serve within the staleness bound...
    let reply = c.query("SELECT * FROM t1 WHERE c0 = 1");
    assert_eq!(sqlstate(&reply), None);
    // ...and refuse with 72000 once the lag exceeds it.
    db.set_repl_lag(10_000);
    let reply = c.query("SELECT * FROM t1 WHERE c0 = 1");
    assert_eq!(sqlstate(&reply).as_deref(), Some("72000"));

    c.terminate();
    srv.drain();
}

#[test]
fn garbage_frames_get_errors_or_clean_disconnects_never_hangs() {
    let db = engine();
    let srv = pg_server(&db, 2);
    let addr = srv.pg_addr().unwrap().to_string();

    // Garbled startup: tiny length prefix.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&3u32.to_be_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    assert!(
        buf.first() == Some(&b'E') || buf.is_empty(),
        "error or clean close, got {buf:?}"
    );

    // Oversized startup length: refused without allocating it.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&(64 * 1024 * 1024u32).to_be_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    assert!(buf.first() == Some(&b'E') || buf.is_empty());

    // Wrong protocol major: in-band error.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut pkt = Vec::new();
    pkt.extend_from_slice(&9u32.to_be_bytes());
    pkt.extend_from_slice(&(2u32 << 16).to_be_bytes());
    pkt.push(0);
    s.write_all(&pkt).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    assert_eq!(buf.first(), Some(&b'E'), "v2 startup answered in-band");

    // SSLRequest probe: 'N', then a normal session proceeds.
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut pkt = Vec::new();
    pkt.extend_from_slice(&8u32.to_be_bytes());
    pkt.extend_from_slice(&80877103u32.to_be_bytes());
    s.write_all(&pkt).unwrap();
    let mut n = [0u8; 1];
    s.read_exact(&mut n).unwrap();
    assert_eq!(n[0], b'N', "SSL declined in the clear");

    // Post-startup garbage: oversized typed-message length kills the
    // connection with an in-band error first.
    let mut c = PgConn::connect(&addr);
    c.stream.write_all(&[b'Q', 0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
    let msg = c.read_msg().expect("error before close");
    assert_eq!(msg.typ, b'E');
    assert!(
        c.read_msg().is_none(),
        "connection closed after framing error"
    );

    // Unknown message type: in-band error, connection survives.
    let mut c = PgConn::connect(&addr);
    c.stream.write_all(&[b'F', 0, 0, 0, 4]).unwrap();
    let reply = c.read_until_ready();
    assert_eq!(sqlstate(&reply).as_deref(), Some("0A000"));
    let reply = c.query("SELECT * FROM x");
    assert_eq!(sqlstate(&reply).as_deref(), Some("42P01"));
    c.terminate();

    // The server is still healthy for a normal session.
    let mut c = PgConn::connect(&addr);
    expect_tag(&c.query("CREATE TABLE ok (k BIGINT)"), "CREATE TABLE");
    c.terminate();
    srv.drain();
}

/// The `WITH (...)` clause on `CREATE INDEX` reaches the engine: the
/// requested parallelism shows up on the `build.sort_workers` gauge,
/// compressed runs account fewer stored than raw bytes, and bad
/// options refuse with SQLSTATE 22023 before any build starts.
#[test]
fn create_index_with_clause_round_trips_build_options() {
    let db = engine();
    let srv = pg_server(&db, 4);
    let addr = srv.pg_addr().unwrap().to_string();
    let mut c = PgConn::connect(&addr);

    expect_tag(
        &c.query("CREATE TABLE big (k BIGINT, v BIGINT)"),
        "CREATE TABLE",
    );
    for chunk in 0..10 {
        let values: Vec<String> = (0..100)
            .map(|i| {
                let k = chunk * 100 + i;
                format!("({}, {})", (k * 7919) % 1000, k)
            })
            .collect();
        expect_tag(
            &c.query(&format!("INSERT INTO big VALUES {}", values.join(", "))),
            "INSERT 0 100",
        );
    }

    // Invalid options refuse with invalid_parameter_value and leave
    // no half-registered index behind.
    for bad in [
        "CREATE INDEX b1 ON big USING sf (k) WITH (parallel_workers = 0)",
        "CREATE INDEX b2 ON big USING sf (k) WITH (compress_runs = sideways)",
        "CREATE INDEX b3 ON big USING sf (k) WITH (fillfactor = 90)",
    ] {
        let reply = c.query(bad);
        assert_eq!(sqlstate(&reply).as_deref(), Some("22023"), "{bad}");
    }
    assert!(db.indexes_of(TableId(1)).is_empty());

    // A valid WITH clause builds and lands on the engine gauge.
    expect_tag(
        &c.query(
            "CREATE INDEX big_k ON big USING sf (k) \
             WITH (parallel_workers = 4, compress_runs = on, checkpoint_every = 64)",
        ),
        "CREATE INDEX",
    );
    let built = db
        .indexes_of(TableId(1))
        .into_iter()
        .find(|i| i.def.name == "big_k")
        .expect("index registered");
    assert_eq!(built.state(), IndexState::Complete);
    verify_index(&db, built.def.id).unwrap();
    assert_eq!(
        db.build_sort_workers.get(),
        4,
        "WITH (parallel_workers = 4) reached the sort"
    );
    let guard = built.sort_store.lock();
    let rs = guard.as_ref().expect("compressed run store retained");
    assert!(rs.raw_bytes.get() > 0);
    assert!(
        rs.stored_bytes.get() < rs.raw_bytes.get(),
        "WITH (compress_runs = on) shrank spilled runs"
    );
    drop(guard);

    // The index serves queries.
    let reply = c.query("SELECT * FROM big WHERE k = 500");
    assert!(!rows(&reply).is_empty());

    c.terminate();
    srv.drain();
}
