//! The tracing acceptance scenario: one trace id links a SQL
//! `CREATE INDEX ... USING sf` — issued over the pg wire while native
//! DML load churns the table — to the primary's build phases, drain
//! passes, quiesce, flip, and WAL flushes, *and* (via the trace tags
//! on replicated WAL frames) to the follower's apply spans. The test
//! fetches the primary's half of the tree over the wire with the
//! filtered `TraceDump`, merges the follower's half, and asserts the
//! rendered forest contains every hop.

use mohan_client::{Client, ClientError};
use mohan_common::{EngineConfig, TableId};
use mohan_oib::schema::Record;
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const T: TableId = TableId(1);
const CATCH_UP: Duration = Duration::from_secs(30);

/// Minimal simple-query pg client — startup, one query, terminate.
/// (The byte-level conformance suite lives in `pgwire_loopback.rs`;
/// this one only needs to drive a statement through the pg path so
/// the request is traced as `pg.query`.)
struct PgConn {
    stream: TcpStream,
}

impl PgConn {
    fn connect(addr: &str) -> PgConn {
        let stream = TcpStream::connect(addr).expect("connect pg listener");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut conn = PgConn { stream };
        let mut params = Vec::new();
        for (k, v) in [("user", "trace"), ("database", "oib")] {
            params.extend_from_slice(k.as_bytes());
            params.push(0);
            params.extend_from_slice(v.as_bytes());
            params.push(0);
        }
        params.push(0);
        let len = 4 + 4 + params.len();
        let mut pkt = Vec::with_capacity(len);
        pkt.extend_from_slice(&(len as u32).to_be_bytes());
        pkt.extend_from_slice(&196_608u32.to_be_bytes()); // protocol 3.0
        pkt.extend_from_slice(&params);
        conn.stream.write_all(&pkt).unwrap();
        conn.read_until_ready();
        conn
    }

    /// Read backend messages until `ReadyForQuery`, returning the
    /// type bytes seen (enough to tell an error from a completion).
    fn read_until_ready(&mut self) -> Vec<u8> {
        let mut seen = Vec::new();
        loop {
            let mut head = [0u8; 5];
            let mut got = 0;
            while got < head.len() {
                match self.stream.read(&mut head[got..]) {
                    Ok(0) => panic!("server closed before ReadyForQuery"),
                    Ok(n) => got += n,
                    Err(e) => panic!("read header: {e}"),
                }
            }
            let len = u32::from_be_bytes([head[1], head[2], head[3], head[4]]) as usize;
            let mut body = vec![0u8; len - 4];
            let mut got = 0;
            while got < body.len() {
                match self.stream.read(&mut body[got..]) {
                    Ok(0) => panic!("EOF mid-message"),
                    Ok(n) => got += n,
                    Err(e) => panic!("read body: {e}"),
                }
            }
            seen.push(head[0]);
            if head[0] == b'Z' {
                return seen;
            }
        }
    }

    fn query(&mut self, sql: &str) -> Vec<u8> {
        let len = 4 + sql.len() + 1;
        let mut pkt = Vec::with_capacity(1 + len);
        pkt.push(b'Q');
        pkt.extend_from_slice(&(len as u32).to_be_bytes());
        pkt.extend_from_slice(sql.as_bytes());
        pkt.push(0);
        self.stream.write_all(&pkt).unwrap();
        self.read_until_ready()
    }
}

#[test]
fn pg_create_index_links_one_span_tree_across_primary_and_follower() {
    let primary = Db::new(EngineConfig {
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    primary.create_table(T);
    {
        let tx = primary.begin();
        for k in 0..1024 {
            primary
                .insert_record(tx, T, &Record(vec![k, k * 3]))
                .unwrap();
        }
        primary.commit(tx).unwrap();
    }

    let srv = Server::start(
        Arc::clone(&primary),
        ServerConfig {
            bind_addr: "127.0.0.1:0".into(),
            pg_bind_addr: Some("127.0.0.1:0".into()),
            workers: 4,
            max_inflight: 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let native_addr = srv.addr().to_string();
    let pg_addr = srv.pg_addr().expect("pg listener").to_string();

    let follower = Db::new(EngineConfig {
        replica: true,
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    follower.create_table(T);
    let replica = Replica::new(Arc::clone(&follower), &native_addr);
    let tail = replica.spawn();

    // Native DML load while the index builds, so the build has drain
    // passes to trace.
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..2)
        .map(|w| {
            let addr = native_addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut k = 10_000 + i64::from(w) * 100_000;
                // Full-speed inserts: the side file must see a backlog
                // while the scan runs, or the drain closes on its
                // first (empty) pass and there is nothing to trace.
                while !stop.load(Ordering::Acquire) {
                    match c.insert(T, vec![k, k * 3]) {
                        Ok(_) => k += 1,
                        Err(ClientError::Busy) => std::thread::yield_now(),
                        Err(e) => panic!("loader: {e}"),
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));

    // The SQL path: `t1` is the positional alias for the natively
    // created table, `c0` its first column. `query` returns once the
    // build completes (NOTICE progress lines stream in between).
    let mut pg = PgConn::connect(&pg_addr);
    let reply = pg.query("CREATE INDEX k_idx ON t1 USING sf (c0)");
    assert!(
        reply.contains(&b'C') && !reply.contains(&b'E'),
        "CREATE INDEX failed: {reply:?}"
    );

    stop.store(true, Ordering::Release);
    for l in loaders {
        l.join().unwrap();
    }

    // Let the follower apply everything the build and loaders wrote.
    primary.wal.flush_all();
    let target = primary.wal.flushed_lsn();
    assert!(
        replica.wait_caught_up(target, CATCH_UP),
        "follower stuck at {} short of {}",
        replica.applied_lsn().0,
        target.0
    );

    // The CREATE INDEX was the only pg statement, so its `pg.query`
    // span is the only one in the ring; its trace id is the handle to
    // the whole causal chain.
    let pg_spans: Vec<_> = primary
        .obs
        .trace()
        .events_filtered(0, 0)
        .into_iter()
        .filter(|e| e.kind == "pg.query")
        .collect();
    assert_eq!(pg_spans.len(), 1, "exactly one traced pg statement");
    let trace_id = pg_spans[0].trace_id;
    assert_ne!(trace_id, 0, "pg requests mint a trace id");

    // The wire surface agrees: a filtered TraceDump returns only this
    // trace, and every line carries its id.
    let mut c = Client::connect(&native_addr).unwrap();
    let jsonl = c.trace_dump(trace_id, 0).unwrap();
    assert!(!jsonl.is_empty(), "filtered dump has events");
    for line in jsonl.lines() {
        assert!(
            line.contains(&format!("\"trace\":{trace_id}")),
            "foreign trace leaked into filtered dump: {line}"
        );
    }

    // One forest across both processes: the primary's request span
    // plus the follower's apply spans (roots there — their parent
    // spans live in the primary's ring).
    let mut events = primary.obs.trace().events_filtered(trace_id, 0);
    events.extend(follower.obs.trace().events_filtered(trace_id, 0));
    let tree = mohan_obs::render_span_tree(&events);
    for needle in [
        "pg.query",      // wire receive (SQL front door)
        "build.phase",   // build phases
        "sf.drain.pass", // no-quiesce drain passes
        "flip",          // catalog flip
        "wal.flush",     // group flush on the primary
        "repl.apply",    // follower apply
    ] {
        assert!(tree.contains(needle), "span tree missing {needle}:\n{tree}");
    }

    replica.stop();
    tail.join().unwrap();
    srv.drain();
}
