//! Loopback replication tests: a live follower tailing the primary's
//! WAL stream over real TCP.
//!
//! The centrepiece is the ISSUE's acceptance scenario: closed-loop DML
//! clients hammer the primary while an online SF build runs over the
//! wire and a [`Replica`] replays the flushed log into its own engine;
//! the primary then crashes and restarts mid-subscription, the
//! follower resubscribes from its applied LSN, and at the end both
//! engines hold identical live heap and index contents with zero
//! committed writes lost.

use mohan_btree::scan::collect_all;
use mohan_client::{Client, ClientError};
use mohan_common::{EngineConfig, IndexEntry, IndexId, Lsn, TableId, TxId};
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::Record;
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{Server, ServerConfig};
use mohan_wal::{LogPayload, RecKind};
use mohan_wire::message::{BuildAlgo, ErrorCode, IndexSpecWire, Request, Response};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const T: TableId = TableId(1);
const CATCH_UP: Duration = Duration::from_secs(30);

fn primary_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

/// A follower engine: same schema, `replica` set so shipped
/// `CatalogUpdate` records are applied instead of ignored.
fn replica_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        replica: true,
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn seed(db: &Arc<Db>, n: i64) {
    let tx = db.begin();
    for k in 0..n {
        db.insert_record(tx, T, &Record(vec![k, 0])).unwrap();
    }
    db.commit(tx).unwrap();
}

fn server(db: &Arc<Db>, cfg: ServerConfig) -> Server {
    Server::start(Arc::clone(db), cfg).expect("bind loopback")
}

fn addr_of(server: &Server) -> String {
    server.addr().to_string()
}

/// Live (non-pseudo-deleted) entries of an index.
fn live_entries(db: &Arc<Db>, id: IndexId) -> Vec<IndexEntry> {
    let idx = db.index(id).expect("index");
    collect_all(&idx.tree, true)
        .expect("tree scan")
        .into_iter()
        .filter(|(_, pseudo)| !pseudo)
        .map(|(e, _)| e)
        .collect()
}

/// Visible keys of the table, for committed-write accounting.
fn surviving_keys(db: &Arc<Db>) -> BTreeSet<i64> {
    db.table_scan(T)
        .unwrap()
        .into_iter()
        .map(|(_, rec)| rec.0[0])
        .collect()
}

fn ix_spec(name: &str) -> IndexSpecWire {
    IndexSpecWire {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// Closed-loop DML churn: each worker auto-commits inserts, updates
/// and deletes in its own key space, recording a key as committed only
/// once its success response was read back.
fn churn(
    addr: &str,
    clients: usize,
    stop: &Arc<AtomicBool>,
    committed: &Arc<Mutex<BTreeSet<i64>>>,
) -> Vec<JoinHandle<u64>> {
    (0..clients)
        .map(|i| {
            let addr = addr.to_owned();
            let stop = Arc::clone(stop);
            let committed = Arc::clone(committed);
            std::thread::spawn(move || {
                let mut c = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => panic!("churn client {i} connect: {e}"),
                };
                let mut key = 1_000_000 * (i as i64 + 1);
                let mut mine: Vec<(mohan_common::Rid, i64)> = Vec::new();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    ops += 1;
                    enum Done {
                        Inserted(mohan_common::Rid),
                        Updated(usize, i64),
                        Deleted(usize, i64),
                    }
                    let result = if ops.is_multiple_of(11) && !mine.is_empty() {
                        let j = ops as usize % mine.len();
                        c.delete(T, mine[j].0).map(|()| Done::Deleted(j, mine[j].1))
                    } else if ops.is_multiple_of(7) && !mine.is_empty() {
                        let j = ops as usize % mine.len();
                        c.update(T, mine[j].0, vec![key, 2])
                            .map(|()| Done::Updated(j, mine[j].1))
                    } else {
                        c.insert(T, vec![key, 0]).map(Done::Inserted)
                    };
                    match result {
                        Ok(Done::Inserted(rid)) => {
                            committed.lock().unwrap().insert(key);
                            mine.push((rid, key));
                        }
                        Ok(Done::Updated(j, old_key)) => {
                            let mut set = committed.lock().unwrap();
                            set.remove(&old_key);
                            set.insert(key);
                            drop(set);
                            mine[j].1 = key;
                        }
                        Ok(Done::Deleted(j, old_key)) => {
                            committed.lock().unwrap().remove(&old_key);
                            mine.swap_remove(j);
                            key -= 1; // key unused
                        }
                        Err(ClientError::Busy) => {
                            key -= 1; // not committed; retry a new op
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(ClientError::Server {
                            code: ErrorCode::Draining,
                            ..
                        }) => break,
                        Err(ClientError::Io(_) | ClientError::Protocol(_)) => break,
                        Err(e) => panic!("churn client {i} unexpected error: {e}"),
                    }
                }
                ops
            })
        })
        .collect()
}

/// Flush the primary and block until the follower has applied its
/// whole flushed prefix.
fn converge(primary: &Arc<Db>, replica: &Replica) -> Lsn {
    primary.wal.flush_all();
    let target = primary.wal.flushed_lsn();
    assert!(
        replica.wait_caught_up(target, CATCH_UP),
        "follower stuck at {} short of {} (lag {})",
        replica.applied_lsn().0,
        target.0,
        replica.lag()
    );
    target
}

/// Both engines agree on every replicated artefact: raw heap scan,
/// visible keys, the index's live entries, and the follower's index
/// passes the verify oracle against the follower's own heap.
fn assert_identical(primary: &Arc<Db>, follower: &Arc<Db>, built: IndexId) {
    assert_eq!(
        primary.table_scan(T).unwrap(),
        follower.table_scan(T).unwrap(),
        "heap contents diverged"
    );
    assert_eq!(surviving_keys(primary), surviving_keys(follower));
    let idx = follower
        .index(built)
        .expect("index replicated via CatalogUpdate");
    assert_eq!(idx.state(), IndexState::Complete);
    assert_eq!(
        live_entries(primary, built),
        live_entries(follower, built),
        "index live entries diverged"
    );
    verify_index(follower, built).expect("follower index verifies against follower heap");
}

/// Satellite (a): the follower converges to identical heap + index
/// contents while the primary runs DML beside an online SF build.
#[test]
fn follower_converges_under_dml_while_sf_build_runs() {
    let primary = primary_engine();
    seed(&primary, 300);
    let srv = server(
        &primary,
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr);
    let apply = replica.spawn();

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&addr, 4, &stop, &committed);

    // Let traffic establish, then build online over the wire; keep the
    // churn running afterwards so the *completed* index sees
    // maintenance through the stream too.
    std::thread::sleep(Duration::from_millis(100));
    let mut builder = Client::connect(&addr).unwrap();
    let ids = builder
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_repl")], |_, _, _| {})
        .expect("online SF build beside a live subscription");
    let built = ids[0];
    std::thread::sleep(Duration::from_millis(200));

    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 100, "too little churn to be meaningful");

    converge(&primary, &replica);
    assert!(replica.lag() == 0, "lag {} after catch-up", replica.lag());
    assert_identical(&primary, &follower, built);

    let committed = committed.lock().unwrap();
    let visible = surviving_keys(&follower);
    for key in committed.iter() {
        assert!(
            visible.contains(key),
            "committed key {key} missing on follower"
        );
    }

    replica.stop();
    srv.drain();
    apply.join().unwrap();
}

/// Satellite (b): a dropped subscription (server drain) is survived by
/// reconnecting and resubscribing from `applied + 1`.
#[test]
fn follower_reconnects_after_server_restart_and_catches_up() {
    let primary = primary_engine();
    seed(&primary, 50);
    let srv1 = server(&primary, ServerConfig::default());

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr_of(&srv1));
    let apply = replica.spawn();
    converge(&primary, &replica);

    // Drain kills the streaming connection; the follower falls into
    // its backoff loop against a dead address.
    srv1.drain();

    // More committed work while no server is up…
    let tx = primary.begin();
    for k in 0..40 {
        primary
            .insert_record(tx, T, &Record(vec![500 + k, 1]))
            .unwrap();
    }
    primary.commit(tx).unwrap();

    // …then a new server (fresh port) over the same engine; repoint
    // the follower at it.
    let srv2 = server(&primary, ServerConfig::default());
    replica.set_addr(&addr_of(&srv2));

    converge(&primary, &replica);
    assert!(replica.reconnects() >= 1, "follower never reconnected");
    assert_eq!(
        primary.table_scan(T).unwrap(),
        follower.table_scan(T).unwrap()
    );

    replica.stop();
    srv2.drain();
    apply.join().unwrap();
}

/// The ISSUE's acceptance scenario: concurrent DML + SF build + one
/// primary crash/restart mid-subscription; the follower resubscribes
/// from its applied LSN and ends byte-identical with zero committed
/// writes lost.
#[test]
fn primary_crash_restart_mid_subscription_loses_nothing() {
    let primary = primary_engine();
    seed(&primary, 200);
    let srv1 = server(
        &primary,
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    );
    let addr1 = addr_of(&srv1);

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr1);
    let apply = replica.spawn();

    // Phase 1: churn + online SF build, follower subscribed throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&addr1, 4, &stop, &committed);
    std::thread::sleep(Duration::from_millis(100));
    let mut builder = Client::connect(&addr1).unwrap();
    let ids = builder
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_crashy")], |_, _, _| {})
        .expect("online SF build");
    let built = ids[0];
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 0);
    drop(builder);

    // Drain flushes the WAL, so the crash below can lose nothing
    // committed; it also tears down the follower's subscription.
    srv1.drain();
    primary.simulate_crash();
    primary.restart().expect("primary restart recovery");

    // The restarted primary serves from a fresh port; repoint the
    // follower, which resubscribes from applied + 1 — always a valid
    // start because `applied` only covers durably flushed records.
    let srv2 = server(&primary, ServerConfig::default());
    let addr2 = addr_of(&srv2);
    replica.set_addr(&addr2);

    // Phase 2: more committed DML on the restarted primary.
    let mut c = Client::connect(&addr2).unwrap();
    for k in 0..60 {
        let key = 9_000_000 + k;
        c.insert(T, vec![key, 3]).unwrap();
        committed.lock().unwrap().insert(key);
    }
    drop(c);

    converge(&primary, &replica);
    assert!(replica.reconnects() >= 1, "follower never reconnected");
    assert_identical(&primary, &follower, built);

    // Zero committed writes lost — on either side.
    let committed = committed.lock().unwrap();
    let on_primary = surviving_keys(&primary);
    let on_follower = surviving_keys(&follower);
    for key in committed.iter() {
        assert!(
            on_primary.contains(key),
            "committed key {key} lost by primary"
        );
        assert!(
            on_follower.contains(key),
            "committed key {key} lost by follower"
        );
    }
    assert!(committed.len() > 50, "too little traffic to be meaningful");

    replica.stop();
    srv2.drain();
    apply.join().unwrap();
}

/// Satellite (2)'s wire half: `from_lsn` is validated at the server
/// boundary — 0 and anything beyond `flushed + 1` are refused with a
/// structured error rather than hanging the flush/tail machinery.
#[test]
fn subscribe_from_lsn_is_validated() {
    let primary = primary_engine();
    seed(&primary, 10);
    primary.wal.flush_all();
    let flushed = primary.wal.flushed_lsn().0;
    let srv = server(&primary, ServerConfig::default());
    let mut c = Client::connect(addr_of(&srv)).unwrap();

    for bad in [0, flushed + 2, u64::MAX] {
        match c.call(&Request::SubscribeWal { from_lsn: bad }).unwrap() {
            Response::Err { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("from_lsn {bad}: expected Malformed, got {other:?}"),
        }
    }
    // A refused subscription leaves the connection (and the admission
    // slot) in its normal state.
    c.ping().unwrap();
    srv.drain();
}

/// A WAL subscriber holds an admission slot like an observer does;
/// hanging up must release it through the reap path.
#[test]
fn subscriber_disconnect_releases_admission_slot() {
    let primary = primary_engine();
    seed(&primary, 10);
    primary.wal.flush_all();
    let srv = server(
        &primary,
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    // Subscribe on a raw client: the first WalFrame proves the stream
    // is live and the single slot is held.
    let mut sub = Client::connect(&addr).unwrap();
    match sub.call(&Request::SubscribeWal { from_lsn: 1 }).unwrap() {
        Response::WalFrame { count, .. } => assert!(count > 0),
        other => panic!("expected WalFrame, got {other:?}"),
    }
    let mut c = Client::connect(&addr).unwrap();
    match c.insert(T, vec![1_000, 0]) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy while subscriber holds the slot, got {other:?}"),
    }

    // Hang up; the worker's reap must give the slot back.
    drop(sub);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match c.insert(T, vec![1_001, 0]) {
            Ok(_) => break,
            Err(ClientError::Busy) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("subscriber slot never released: {e}"),
        }
    }
    assert!(srv.stats().wal_subs.get() >= 1);
    srv.drain();
}

/// One named counter out of a `Request::Stats` round trip.
fn stat(c: &mut Client, key: &str) -> u64 {
    match c.call(&Request::Stats).unwrap() {
        Response::Stats { counters } => counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v),
        other => panic!("expected Stats, got {other:?}"),
    }
}

/// A record bigger than the pump's per-frame byte budget (but under
/// the wire frame cap) must travel alone in its own frame, with the
/// stream intact and gapless around it — the shape `persist_catalog`
/// produces for a large schema.
#[test]
fn oversized_record_ships_alone_without_breaking_stream() {
    const BIG: usize = 3 << 20;
    let primary = primary_engine();
    seed(&primary, 20);
    primary.wal.flush_all();
    let srv = server(&primary, ServerConfig::default());
    let addr = addr_of(&srv);

    // `tail` is 0 until the writer below is done; the subscriber keeps
    // listening until it has everything up to the final flushed LSN.
    let tail = Arc::new(AtomicU64::new(0));
    let sub = {
        let tail = Arc::clone(&tail);
        let c = Client::connect(&addr).unwrap();
        std::thread::spawn(move || {
            let mut next = 1u64;
            let mut big_frame_records = 0usize;
            let res = c.subscribe_wal(1, |_flushed, records, _traces| {
                if records.iter().any(|r| {
                    matches!(&r.payload, LogPayload::CatalogUpdate { bytes } if bytes.len() == BIG)
                }) {
                    big_frame_records += records.len();
                }
                for rec in &records {
                    assert_eq!(rec.lsn.0, next, "stream gap or replay");
                    next += 1;
                }
                let t = tail.load(Ordering::Acquire);
                t == 0 || next <= t
            });
            (res, next, big_frame_records)
        })
    };

    // Live records on both sides of a record ~3x the frame budget.
    std::thread::sleep(Duration::from_millis(100));
    let tx = primary.begin();
    for k in 0..10 {
        primary
            .insert_record(tx, T, &Record(vec![700 + k, 0]))
            .unwrap();
    }
    primary.commit(tx).unwrap();
    primary.wal.append(
        TxId(999_999),
        Lsn::NULL,
        RecKind::RedoOnly,
        LogPayload::CatalogUpdate {
            bytes: vec![0xCD; BIG],
        },
    );
    let tx = primary.begin();
    for k in 0..10 {
        primary
            .insert_record(tx, T, &Record(vec![800 + k, 0]))
            .unwrap();
    }
    primary.commit(tx).unwrap();
    primary.wal.flush_all();
    tail.store(primary.wal.flushed_lsn().0, Ordering::Release);

    let (res, next, big_frame_records) = sub.join().unwrap();
    res.expect("stream must survive the oversized record");
    assert_eq!(next, tail.load(Ordering::Acquire) + 1, "records missing");
    assert_eq!(
        big_frame_records, 1,
        "oversized record must travel alone in its own frame"
    );
    srv.drain();
}

/// A subscriber that stops reading while the log churns past the
/// broadcast ring's retained window is cut loose with the structured
/// [`ErrorCode::SubscriptionLagged`] — not silently starved, not
/// killed by the write timeout.
#[test]
fn stalled_subscriber_cut_loose_with_structured_error() {
    let primary = primary_engine();
    seed(&primary, 50);
    primary.wal.flush_all();
    let srv = server(
        &primary,
        ServerConfig {
            // Long enough that the slow-follower policy (not the
            // blocked-write reaper) decides this connection's fate.
            write_timeout: Duration::from_secs(60),
            fanout_ring_bytes: 1 << 20,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    // The subscriber stalls inside its first frame callback — reading
    // nothing — until the main thread has seen the cut-loose land.
    let resume = Arc::new(AtomicBool::new(false));
    let from = primary.wal.flushed_lsn().0 + 1;
    let sub = {
        let resume = Arc::clone(&resume);
        let c = Client::connect(&addr).unwrap();
        std::thread::spawn(move || {
            let mut stalled_once = false;
            c.subscribe_wal(from, move |_flushed, _records, _traces| {
                if !stalled_once {
                    stalled_once = true;
                    let deadline = std::time::Instant::now() + Duration::from_secs(20);
                    while !resume.load(Ordering::Acquire) && std::time::Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                true
            })
        })
    };

    // Churn whole ring windows past the stalled cursor until the
    // fan-out counters show the cut; the payloads are raw filler — no
    // follower engine ever applies them.
    let mut statsc = Client::connect(&addr).unwrap();
    let mut cut = 0u64;
    for _ in 0..48 {
        for _ in 0..16 {
            primary.wal.append(
                TxId(999_999),
                Lsn::NULL,
                RecKind::RedoOnly,
                LogPayload::CatalogUpdate {
                    bytes: vec![0xAB; 64 << 10],
                },
            );
        }
        primary.wal.flush_all();
        cut = stat(&mut statsc, "repl.fanout.cut_loose");
        if cut >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cut >= 1, "stalled subscriber was never cut loose");
    resume.store(true, Ordering::Release);

    match sub.join().unwrap() {
        Err(ClientError::Server {
            code: ErrorCode::SubscriptionLagged { retained_from },
            ..
        }) => assert!(retained_from > 1, "retained_from {retained_from}"),
        other => panic!("expected SubscriptionLagged cut-loose, got {other:?}"),
    }
    srv.drain();
}

/// Copy one direction of a proxied connection; while `pause` holds,
/// reads stop — which freezes the stream and turns into TCP
/// backpressure on the writer.
fn pipe(
    mut from: TcpStream,
    mut to: TcpStream,
    pause: Option<Arc<AtomicBool>>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        from.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut buf = [0u8; 8192];
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if pause.as_ref().is_some_and(|p| p.load(Ordering::Relaxed)) {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            match from.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
        let _ = to.shutdown(std::net::Shutdown::Both);
        let _ = from.shutdown(std::net::Shutdown::Both);
    })
}

/// A pausable TCP proxy in front of the primary: the cheapest honest
/// model of a stalled follower. Pausing freezes only the
/// server→client direction, so (re)subscribe requests still reach the
/// primary while its responses back up.
fn pausable_proxy(target: String) -> (String, Arc<AtomicBool>, Arc<AtomicBool>, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    listener.set_nonblocking(true).unwrap();
    let pause = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let (p, s) = (Arc::clone(&pause), Arc::clone(&stop));
    let handle = std::thread::spawn(move || {
        let mut pipes: Vec<JoinHandle<()>> = Vec::new();
        while !s.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((client, _)) => {
                    let upstream = TcpStream::connect(&target).expect("proxy upstream connect");
                    pipes.push(pipe(
                        client.try_clone().unwrap(),
                        upstream.try_clone().unwrap(),
                        None,
                        Arc::clone(&s),
                    ));
                    pipes.push(pipe(upstream, client, Some(Arc::clone(&p)), Arc::clone(&s)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for t in pipes {
            let _ = t.join();
        }
    });
    (addr, pause, stop, handle)
}

/// The cut-loose acceptance scenario end to end: a live follower's
/// stream freezes mid-SF-build, the primary churns several ring
/// windows past it and cuts it loose, and on thaw the follower
/// resubscribes, catches up through the primary's bounded scans, and
/// converges with zero committed writes lost and a verifying index.
#[test]
fn cut_loose_follower_reconnects_and_converges_mid_build() {
    let primary = primary_engine();
    seed(&primary, 300);
    let srv = server(
        &primary,
        ServerConfig {
            workers: 2,
            max_inflight: 32,
            write_timeout: Duration::from_secs(60),
            fanout_ring_bytes: 1 << 20,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);
    let (proxy_addr, pause, proxy_stop, proxy) = pausable_proxy(addr.clone());

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &proxy_addr);
    let apply = replica.spawn();
    converge(&primary, &replica);

    // Freeze the follower's stream, then commit wide rows — whole ring
    // windows' worth — until the primary cuts the stalled subscription
    // loose. The freeze stays well under the follower's socket read
    // timeout, so the *structured error*, not a timeout, is what it
    // sees first.
    pause.store(true, Ordering::Release);
    let mut committed = BTreeSet::new();
    let mut statsc = Client::connect(&addr).unwrap();
    let mut cut = 0u64;
    for batch in 0..64i64 {
        let tx = primary.begin();
        for i in 0..1000 {
            let key = 5_000_000 + batch * 1000 + i;
            // 12 columns: as wide as `EngineConfig::small()` pages fit.
            primary
                .insert_record(tx, T, &Record(vec![key; 12]))
                .unwrap();
            committed.insert(key);
        }
        primary.commit(tx).unwrap();
        primary.wal.flush_all();
        cut = stat(&mut statsc, "repl.fanout.cut_loose");
        if cut >= 1 {
            break;
        }
    }
    assert!(cut >= 1, "primary never cut the frozen follower loose");

    // SF build while the follower is still frozen and cut: its DDL and
    // side-file records reach the follower only via the reconnect
    // catch-up path.
    let mut builder = Client::connect(&addr).unwrap();
    let ids = builder
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_cut")], |_, _, _| {})
        .expect("SF build while the follower is cut loose");
    let built = ids[0];
    pause.store(false, Ordering::Release);

    converge(&primary, &replica);
    assert!(
        replica.cut_loose_count() >= 1,
        "follower never classified a cut-loose (reconnects {})",
        replica.reconnects()
    );
    assert_identical(&primary, &follower, built);
    let visible = surviving_keys(&follower);
    for key in &committed {
        assert!(visible.contains(key), "committed key {key} lost");
    }

    replica.stop();
    proxy_stop.store(true, Ordering::Release);
    srv.drain();
    apply.join().unwrap();
    proxy.join().unwrap();
}
