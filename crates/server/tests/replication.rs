//! Loopback replication tests: a live follower tailing the primary's
//! WAL stream over real TCP.
//!
//! The centrepiece is the ISSUE's acceptance scenario: closed-loop DML
//! clients hammer the primary while an online SF build runs over the
//! wire and a [`Replica`] replays the flushed log into its own engine;
//! the primary then crashes and restarts mid-subscription, the
//! follower resubscribes from its applied LSN, and at the end both
//! engines hold identical live heap and index contents with zero
//! committed writes lost.

use mohan_btree::scan::collect_all;
use mohan_client::{Client, ClientError};
use mohan_common::{EngineConfig, IndexEntry, IndexId, Lsn, TableId};
use mohan_oib::runtime::IndexState;
use mohan_oib::schema::Record;
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{Server, ServerConfig};
use mohan_wire::message::{BuildAlgo, ErrorCode, IndexSpecWire, Request, Response};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const T: TableId = TableId(1);
const CATCH_UP: Duration = Duration::from_secs(30);

fn primary_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

/// A follower engine: same schema, `replica` set so shipped
/// `CatalogUpdate` records are applied instead of ignored.
fn replica_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        replica: true,
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn seed(db: &Arc<Db>, n: i64) {
    let tx = db.begin();
    for k in 0..n {
        db.insert_record(tx, T, &Record(vec![k, 0])).unwrap();
    }
    db.commit(tx).unwrap();
}

fn server(db: &Arc<Db>, cfg: ServerConfig) -> Server {
    Server::start(Arc::clone(db), cfg).expect("bind loopback")
}

fn addr_of(server: &Server) -> String {
    server.addr().to_string()
}

/// Live (non-pseudo-deleted) entries of an index.
fn live_entries(db: &Arc<Db>, id: IndexId) -> Vec<IndexEntry> {
    let idx = db.index(id).expect("index");
    collect_all(&idx.tree, true)
        .expect("tree scan")
        .into_iter()
        .filter(|(_, pseudo)| !pseudo)
        .map(|(e, _)| e)
        .collect()
}

/// Visible keys of the table, for committed-write accounting.
fn surviving_keys(db: &Arc<Db>) -> BTreeSet<i64> {
    db.table_scan(T)
        .unwrap()
        .into_iter()
        .map(|(_, rec)| rec.0[0])
        .collect()
}

fn ix_spec(name: &str) -> IndexSpecWire {
    IndexSpecWire {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// Closed-loop DML churn: each worker auto-commits inserts, updates
/// and deletes in its own key space, recording a key as committed only
/// once its success response was read back.
fn churn(
    addr: &str,
    clients: usize,
    stop: &Arc<AtomicBool>,
    committed: &Arc<Mutex<BTreeSet<i64>>>,
) -> Vec<JoinHandle<u64>> {
    (0..clients)
        .map(|i| {
            let addr = addr.to_owned();
            let stop = Arc::clone(stop);
            let committed = Arc::clone(committed);
            std::thread::spawn(move || {
                let mut c = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(e) => panic!("churn client {i} connect: {e}"),
                };
                let mut key = 1_000_000 * (i as i64 + 1);
                let mut mine: Vec<(mohan_common::Rid, i64)> = Vec::new();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    ops += 1;
                    enum Done {
                        Inserted(mohan_common::Rid),
                        Updated(usize, i64),
                        Deleted(usize, i64),
                    }
                    let result = if ops.is_multiple_of(11) && !mine.is_empty() {
                        let j = ops as usize % mine.len();
                        c.delete(T, mine[j].0).map(|()| Done::Deleted(j, mine[j].1))
                    } else if ops.is_multiple_of(7) && !mine.is_empty() {
                        let j = ops as usize % mine.len();
                        c.update(T, mine[j].0, vec![key, 2])
                            .map(|()| Done::Updated(j, mine[j].1))
                    } else {
                        c.insert(T, vec![key, 0]).map(Done::Inserted)
                    };
                    match result {
                        Ok(Done::Inserted(rid)) => {
                            committed.lock().unwrap().insert(key);
                            mine.push((rid, key));
                        }
                        Ok(Done::Updated(j, old_key)) => {
                            let mut set = committed.lock().unwrap();
                            set.remove(&old_key);
                            set.insert(key);
                            drop(set);
                            mine[j].1 = key;
                        }
                        Ok(Done::Deleted(j, old_key)) => {
                            committed.lock().unwrap().remove(&old_key);
                            mine.swap_remove(j);
                            key -= 1; // key unused
                        }
                        Err(ClientError::Busy) => {
                            key -= 1; // not committed; retry a new op
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(ClientError::Server {
                            code: ErrorCode::Draining,
                            ..
                        }) => break,
                        Err(ClientError::Io(_) | ClientError::Protocol(_)) => break,
                        Err(e) => panic!("churn client {i} unexpected error: {e}"),
                    }
                }
                ops
            })
        })
        .collect()
}

/// Flush the primary and block until the follower has applied its
/// whole flushed prefix.
fn converge(primary: &Arc<Db>, replica: &Replica) -> Lsn {
    primary.wal.flush_all();
    let target = primary.wal.flushed_lsn();
    assert!(
        replica.wait_caught_up(target, CATCH_UP),
        "follower stuck at {} short of {} (lag {})",
        replica.applied_lsn().0,
        target.0,
        replica.lag()
    );
    target
}

/// Both engines agree on every replicated artefact: raw heap scan,
/// visible keys, the index's live entries, and the follower's index
/// passes the verify oracle against the follower's own heap.
fn assert_identical(primary: &Arc<Db>, follower: &Arc<Db>, built: IndexId) {
    assert_eq!(
        primary.table_scan(T).unwrap(),
        follower.table_scan(T).unwrap(),
        "heap contents diverged"
    );
    assert_eq!(surviving_keys(primary), surviving_keys(follower));
    let idx = follower
        .index(built)
        .expect("index replicated via CatalogUpdate");
    assert_eq!(idx.state(), IndexState::Complete);
    assert_eq!(
        live_entries(primary, built),
        live_entries(follower, built),
        "index live entries diverged"
    );
    verify_index(follower, built).expect("follower index verifies against follower heap");
}

/// Satellite (a): the follower converges to identical heap + index
/// contents while the primary runs DML beside an online SF build.
#[test]
fn follower_converges_under_dml_while_sf_build_runs() {
    let primary = primary_engine();
    seed(&primary, 300);
    let srv = server(
        &primary,
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr);
    let apply = replica.spawn();

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&addr, 4, &stop, &committed);

    // Let traffic establish, then build online over the wire; keep the
    // churn running afterwards so the *completed* index sees
    // maintenance through the stream too.
    std::thread::sleep(Duration::from_millis(100));
    let mut builder = Client::connect(&addr).unwrap();
    let ids = builder
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_repl")], |_, _, _| {})
        .expect("online SF build beside a live subscription");
    let built = ids[0];
    std::thread::sleep(Duration::from_millis(200));

    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 100, "too little churn to be meaningful");

    converge(&primary, &replica);
    assert!(replica.lag() == 0, "lag {} after catch-up", replica.lag());
    assert_identical(&primary, &follower, built);

    let committed = committed.lock().unwrap();
    let visible = surviving_keys(&follower);
    for key in committed.iter() {
        assert!(
            visible.contains(key),
            "committed key {key} missing on follower"
        );
    }

    replica.stop();
    srv.drain();
    apply.join().unwrap();
}

/// Satellite (b): a dropped subscription (server drain) is survived by
/// reconnecting and resubscribing from `applied + 1`.
#[test]
fn follower_reconnects_after_server_restart_and_catches_up() {
    let primary = primary_engine();
    seed(&primary, 50);
    let srv1 = server(&primary, ServerConfig::default());

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr_of(&srv1));
    let apply = replica.spawn();
    converge(&primary, &replica);

    // Drain kills the streaming connection; the follower falls into
    // its backoff loop against a dead address.
    srv1.drain();

    // More committed work while no server is up…
    let tx = primary.begin();
    for k in 0..40 {
        primary
            .insert_record(tx, T, &Record(vec![500 + k, 1]))
            .unwrap();
    }
    primary.commit(tx).unwrap();

    // …then a new server (fresh port) over the same engine; repoint
    // the follower at it.
    let srv2 = server(&primary, ServerConfig::default());
    replica.set_addr(&addr_of(&srv2));

    converge(&primary, &replica);
    assert!(replica.reconnects() >= 1, "follower never reconnected");
    assert_eq!(
        primary.table_scan(T).unwrap(),
        follower.table_scan(T).unwrap()
    );

    replica.stop();
    srv2.drain();
    apply.join().unwrap();
}

/// The ISSUE's acceptance scenario: concurrent DML + SF build + one
/// primary crash/restart mid-subscription; the follower resubscribes
/// from its applied LSN and ends byte-identical with zero committed
/// writes lost.
#[test]
fn primary_crash_restart_mid_subscription_loses_nothing() {
    let primary = primary_engine();
    seed(&primary, 200);
    let srv1 = server(
        &primary,
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    );
    let addr1 = addr_of(&srv1);

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &addr1);
    let apply = replica.spawn();

    // Phase 1: churn + online SF build, follower subscribed throughout.
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&addr1, 4, &stop, &committed);
    std::thread::sleep(Duration::from_millis(100));
    let mut builder = Client::connect(&addr1).unwrap();
    let ids = builder
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_crashy")], |_, _, _| {})
        .expect("online SF build");
    let built = ids[0];
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let total_ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_ops > 0);
    drop(builder);

    // Drain flushes the WAL, so the crash below can lose nothing
    // committed; it also tears down the follower's subscription.
    srv1.drain();
    primary.simulate_crash();
    primary.restart().expect("primary restart recovery");

    // The restarted primary serves from a fresh port; repoint the
    // follower, which resubscribes from applied + 1 — always a valid
    // start because `applied` only covers durably flushed records.
    let srv2 = server(&primary, ServerConfig::default());
    let addr2 = addr_of(&srv2);
    replica.set_addr(&addr2);

    // Phase 2: more committed DML on the restarted primary.
    let mut c = Client::connect(&addr2).unwrap();
    for k in 0..60 {
        let key = 9_000_000 + k;
        c.insert(T, vec![key, 3]).unwrap();
        committed.lock().unwrap().insert(key);
    }
    drop(c);

    converge(&primary, &replica);
    assert!(replica.reconnects() >= 1, "follower never reconnected");
    assert_identical(&primary, &follower, built);

    // Zero committed writes lost — on either side.
    let committed = committed.lock().unwrap();
    let on_primary = surviving_keys(&primary);
    let on_follower = surviving_keys(&follower);
    for key in committed.iter() {
        assert!(
            on_primary.contains(key),
            "committed key {key} lost by primary"
        );
        assert!(
            on_follower.contains(key),
            "committed key {key} lost by follower"
        );
    }
    assert!(committed.len() > 50, "too little traffic to be meaningful");

    replica.stop();
    srv2.drain();
    apply.join().unwrap();
}

/// Satellite (2)'s wire half: `from_lsn` is validated at the server
/// boundary — 0 and anything beyond `flushed + 1` are refused with a
/// structured error rather than hanging the flush/tail machinery.
#[test]
fn subscribe_from_lsn_is_validated() {
    let primary = primary_engine();
    seed(&primary, 10);
    primary.wal.flush_all();
    let flushed = primary.wal.flushed_lsn().0;
    let srv = server(&primary, ServerConfig::default());
    let mut c = Client::connect(addr_of(&srv)).unwrap();

    for bad in [0, flushed + 2, u64::MAX] {
        match c.call(&Request::SubscribeWal { from_lsn: bad }).unwrap() {
            Response::Err { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("from_lsn {bad}: expected Malformed, got {other:?}"),
        }
    }
    // A refused subscription leaves the connection (and the admission
    // slot) in its normal state.
    c.ping().unwrap();
    srv.drain();
}

/// A WAL subscriber holds an admission slot like an observer does;
/// hanging up must release it through the reap path.
#[test]
fn subscriber_disconnect_releases_admission_slot() {
    let primary = primary_engine();
    seed(&primary, 10);
    primary.wal.flush_all();
    let srv = server(
        &primary,
        ServerConfig {
            max_inflight: 1,
            ..ServerConfig::default()
        },
    );
    let addr = addr_of(&srv);

    // Subscribe on a raw client: the first WalFrame proves the stream
    // is live and the single slot is held.
    let mut sub = Client::connect(&addr).unwrap();
    match sub.call(&Request::SubscribeWal { from_lsn: 1 }).unwrap() {
        Response::WalFrame { count, .. } => assert!(count > 0),
        other => panic!("expected WalFrame, got {other:?}"),
    }
    let mut c = Client::connect(&addr).unwrap();
    match c.insert(T, vec![1_000, 0]) {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy while subscriber holds the slot, got {other:?}"),
    }

    // Hang up; the worker's reap must give the slot back.
    drop(sub);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match c.insert(T, vec![1_001, 0]) {
            Ok(_) => break,
            Err(ClientError::Busy) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("subscriber slot never released: {e}"),
        }
    }
    assert!(srv.stats().wal_subs.get() >= 1);
    srv.drain();
}
