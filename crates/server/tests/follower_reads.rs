//! Loopback tests for follower reads, the role-aware handshake, and
//! follower → primary promotion.
//!
//! A live [`Replica`] tails the primary's WAL over real TCP while a
//! second wire server fronts the *follower* engine: clients read from
//! the follower under a staleness bound, get structured refusals for
//! writes (with a leader hint) and over-budget reads (`Stale`), and —
//! after the primary dies — promote the follower in place and keep
//! writing to it, with zero committed writes lost.

use mohan_client::{Client, ClientError};
use mohan_common::{EngineConfig, KeyValue, ReadApi, Rid, TableId};
use mohan_oib::schema::Record;
use mohan_oib::verify::verify_index;
use mohan_oib::Db;
use mohan_replica::Replica;
use mohan_server::{PromoteHook, Promotion, Server, ServerConfig};
use mohan_wire::message::{
    proto_version, BuildAlgo, ErrorCode, IndexSpecWire, Request, Response, Role, PROTO_MAJOR,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const T: TableId = TableId(1);
const CATCH_UP: Duration = Duration::from_secs(30);

fn primary_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

fn replica_engine() -> Arc<Db> {
    let db = Db::new(EngineConfig {
        replica: true,
        lock_timeout_ms: 20_000,
        ..EngineConfig::small()
    });
    db.create_table(T);
    db
}

/// Seed `n` records, returning their rids — physical replication
/// reproduces rids exactly, so the same rids are valid on the
/// follower once it has caught up.
fn seed(db: &Arc<Db>, n: i64) -> Vec<Rid> {
    let tx = db.begin();
    let rids = (0..n)
        .map(|k| db.insert_record(tx, T, &Record(vec![k, 0])).unwrap())
        .collect();
    db.commit(tx).unwrap();
    rids
}

/// A follower wire endpoint: staleness-bounded reads, leader hint for
/// bounced writes, and a promotion hook that flips `replica` in place.
fn follower_server(
    follower: &Arc<Db>,
    replica: &Arc<Replica>,
    max_lag_lsn: u64,
    leader_hint: &str,
) -> Server {
    let hook_replica = Arc::clone(replica);
    Server::start(
        Arc::clone(follower),
        ServerConfig {
            max_lag_lsn,
            leader_hint: leader_hint.into(),
            promote_hook: Some(PromoteHook::new(move || {
                hook_replica.promote().map(|r| Promotion {
                    last_lsn: r.last_lsn.0,
                    losers_undone: r.losers_undone,
                })
            })),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower loopback")
}

fn converge(primary: &Arc<Db>, replica: &Replica) {
    primary.wal.flush_all();
    let target = primary.wal.flushed_lsn();
    assert!(
        replica.wait_caught_up(target, CATCH_UP),
        "follower stuck at {} short of {} (lag {})",
        replica.applied_lsn().0,
        target.0,
        replica.lag()
    );
}

fn surviving_keys(db: &Arc<Db>) -> BTreeSet<i64> {
    db.table_scan(T)
        .unwrap()
        .into_iter()
        .map(|(_, rec)| rec.0[0])
        .collect()
}

/// Closed-loop insert churn against the primary; a key counts as
/// committed only once its success response was read back.
fn churn(
    addr: &str,
    clients: usize,
    stop: &Arc<AtomicBool>,
    committed: &Arc<Mutex<BTreeSet<i64>>>,
) -> Vec<JoinHandle<u64>> {
    (0..clients)
        .map(|i| {
            let addr = addr.to_owned();
            let stop = Arc::clone(stop);
            let committed = Arc::clone(committed);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("churn connect");
                let mut key = 1_000_000 * (i as i64 + 1);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    key += 1;
                    match c.insert(T, vec![key, 1]) {
                        Ok(_) => {
                            committed.lock().unwrap().insert(key);
                            ops += 1;
                        }
                        Err(ClientError::Busy) => {
                            key -= 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                ops
            })
        })
        .collect()
}

fn ix_spec(name: &str) -> IndexSpecWire {
    IndexSpecWire {
        name: name.into(),
        key_cols: vec![0],
        unique: false,
    }
}

/// Tentpole happy path: wire clients read from the follower (through
/// the [`ReadApi`] waist) while the primary takes DML churn and an
/// online SF build; lookups against the replicated index work too,
/// and `repl.reads_served` accounts for every follower read.
#[test]
fn follower_serves_reads_under_primary_churn_and_build() {
    let primary = primary_engine();
    let rids = seed(&primary, 200);
    let psrv = Server::start(
        Arc::clone(&primary),
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let paddr = psrv.addr().to_string();

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &paddr);
    let apply = replica.spawn();
    converge(&primary, &replica);

    let fsrv = follower_server(&follower, &replica, u64::MAX, &paddr);
    let faddr = fsrv.addr().to_string();

    // Handshake: the follower identifies itself as a replica.
    let mut reader = Client::connect(&faddr).unwrap();
    let welcome = reader.hello(Role::Client).unwrap();
    assert_eq!(welcome.role, Role::Replica);
    assert_eq!(welcome.proto_version >> 16, u32::from(PROTO_MAJOR));

    // Concurrent churn + online SF build on the primary…
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&paddr, 2, &stop, &committed);
    let mut builder = Client::connect(&paddr).unwrap();
    let build = std::thread::spawn(move || {
        builder
            .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_frd")], |_, _, _| {})
            .expect("online SF build")[0]
    });

    // …while the follower keeps answering reads of the stable seed
    // rows. Drive through the ReadApi trait object path on purpose.
    let api: &mut dyn ReadApi<Err = ClientError> = &mut reader;
    for round in 0..50 {
        let i = round * 4 % rids.len();
        let cols = api.read(T, rids[i]).expect("follower read");
        assert_eq!(cols[0], i as i64);
    }

    let built = build.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(ops > 0, "no churn committed");
    converge(&primary, &replica);

    // Lookup against the replicated index, over the wire.
    let hits = api.lookup(built, &KeyValue::from_i64(17)).unwrap();
    assert_eq!(hits, vec![rids[17]]);

    assert!(
        follower.obs.counter("repl.reads_served").get() >= 51,
        "follower reads unaccounted"
    );
    assert_eq!(follower.obs.counter("repl.reads_rejected_stale").get(), 0);
    verify_index(&follower, built).expect("replicated index verifies");

    replica.stop();
    psrv.drain();
    fsrv.drain();
    apply.join().unwrap();
}

/// Reads over the staleness budget are refused with `Stale { lag }`,
/// and the refusal is visible in `repl.reads_rejected_stale`; stats
/// and metrics stay answerable regardless of lag.
#[test]
fn stale_follower_rejects_reads_but_answers_observability() {
    let follower = replica_engine();
    // No live replication needed: the gate reads `repl_lag`, which the
    // apply loop normally maintains and the test sets directly.
    follower.set_repl_lag(500);
    let replica = Replica::new(Arc::clone(&follower), "127.0.0.1:1"); // never connected
    let fsrv = follower_server(&follower, &replica, 100, "primary:7878");
    let mut c = Client::connect(fsrv.addr().to_string()).unwrap();

    match c.read(T, Rid::new(1, 0)) {
        Err(ClientError::Server {
            code: ErrorCode::Stale { lag },
            ..
        }) => assert_eq!(lag, 500),
        other => panic!("expected Stale, got {other:?}"),
    }
    assert_eq!(follower.obs.counter("repl.reads_rejected_stale").get(), 1);

    // Observability is exempt from the staleness gate: a stalled
    // follower must still be diagnosable.
    assert!(!c.stats().unwrap().is_empty());
    let m = c.metrics().unwrap();
    assert_eq!(m.counter("repl.reads_rejected_stale"), Some(1));
    assert!(m.counter("repl.lag_lsn").is_some(), "lag gauge missing");

    // Catching up (lag back under budget) reopens reads — the seed row
    // is absent here, so NotFound, not Stale.
    follower.set_repl_lag(0);
    match c.read(T, Rid::new(1, 0)) {
        Err(ClientError::Server {
            code: ErrorCode::NotFound,
            ..
        }) => {}
        other => panic!("expected NotFound once fresh, got {other:?}"),
    }

    fsrv.drain();
}

/// Writes bounced off a follower carry the configured leader hint, at
/// every write opcode; the handshake is optional (an un-handshaked
/// client still gets served) and unknown protocol majors are refused.
#[test]
fn follower_bounces_writes_with_leader_hint_and_validates_hello() {
    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), "127.0.0.1:1");
    let fsrv = follower_server(&follower, &replica, u64::MAX, "10.0.0.7:7878");
    let mut c = Client::connect(fsrv.addr().to_string()).unwrap();

    // No Hello sent yet — the server must serve pre-handshake clients.
    c.ping().unwrap();

    let expect_bounce = |r: Result<(), ClientError>| match r {
        Err(ClientError::Server {
            code: ErrorCode::NotWritable { leader_hint },
            ..
        }) => assert_eq!(leader_hint, "10.0.0.7:7878"),
        other => panic!("expected NotWritable with hint, got {other:?}"),
    };
    expect_bounce(c.begin().map(|_| ()));
    expect_bounce(c.insert(T, vec![1, 2]).map(|_| ()));
    expect_bounce(c.update(T, Rid::new(1, 0), vec![1, 2]));
    expect_bounce(c.delete(T, Rid::new(1, 0)));
    expect_bounce(
        c.create_index(T, BuildAlgo::Sf, vec![ix_spec("nope")], |_, _, _| {})
            .map(|_| ()),
    );

    // Handshake with a future major version: structured refusal, and
    // the connection survives for a corrected retry.
    match c
        .call(&Request::Hello {
            proto_version: (9 << 16) | 3,
            role: Role::Client,
        })
        .unwrap()
    {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::UnsupportedProto),
        other => panic!("expected UnsupportedProto, got {other:?}"),
    }
    let welcome = c.hello(Role::Client).unwrap();
    assert_eq!(welcome.proto_version, proto_version());
    assert_eq!(welcome.role, Role::Replica);

    fsrv.drain();
}

/// The acceptance scenario: the primary dies mid-deployment, a wire
/// client promotes the follower, zero committed writes are lost, and
/// the promoted engine takes writes — including an online index build
/// — immediately afterwards.
#[test]
fn promotion_after_primary_crash_loses_nothing_and_accepts_writes() {
    let primary = primary_engine();
    seed(&primary, 100);
    let psrv = Server::start(
        Arc::clone(&primary),
        ServerConfig {
            workers: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let paddr = psrv.addr().to_string();

    let follower = replica_engine();
    let replica = Replica::new(Arc::clone(&follower), &paddr);
    let apply = replica.spawn();

    let fsrv = follower_server(&follower, &replica, u64::MAX, &paddr);
    let faddr = fsrv.addr().to_string();

    // Churn, then converge so every committed write reached the
    // follower before the lights go out.
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(Mutex::new(BTreeSet::new()));
    let workers = churn(&paddr, 3, &stop, &committed);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(ops > 0, "no churn committed");
    converge(&primary, &replica);

    // Primary dies: drain the endpoint, then crash the engine.
    psrv.drain();
    primary.simulate_crash();

    // Before promotion the follower still refuses writes…
    let mut c = Client::connect(&faddr).unwrap();
    match c.insert(T, vec![7, 7]) {
        Err(ClientError::Server {
            code: ErrorCode::NotWritable { .. },
            ..
        }) => {}
        other => panic!("expected NotWritable pre-promotion, got {other:?}"),
    }

    // …then a wire client flips it.
    let promoted = c.promote().unwrap();
    assert!(promoted.last_lsn > 0);
    assert!(replica.is_promoted());
    assert!(!follower.is_replica());
    assert_eq!(c.hello(Role::Client).unwrap().role, Role::Primary);

    // Zero committed writes lost across the failover.
    let committed = committed.lock().unwrap();
    assert!(committed.len() > 10, "too little traffic to be meaningful");
    let visible = surviving_keys(&follower);
    for key in committed.iter() {
        assert!(
            visible.contains(key),
            "committed key {key} lost in failover"
        );
    }
    drop(committed);

    // The promoted engine is a primary in every way that matters:
    // plain DML and an online SF build both succeed over the wire.
    let rid = c
        .insert(T, vec![42_000_000, 9])
        .expect("post-promotion insert");
    assert_eq!(c.read(T, rid).unwrap(), vec![42_000_000, 9]);
    let ids = c
        .create_index(T, BuildAlgo::Sf, vec![ix_spec("ix_post")], |_, _, _| {})
        .expect("post-promotion online build");
    verify_index(&follower, ids[0]).expect("post-promotion index verifies");
    let hits = c.lookup(ids[0], &KeyValue::from_i64(42_000_000)).unwrap();
    assert_eq!(hits, vec![rid]);

    // A second promotion attempt is refused cleanly.
    match c.promote() {
        Err(ClientError::Server {
            code: ErrorCode::Internal,
            ..
        }) => {}
        other => panic!("expected Internal on double promote, got {other:?}"),
    }

    fsrv.drain();
    apply.join().unwrap();
}
