//! Page latches.
//!
//! A latch "is like a semaphore and it is very cheap in terms of
//! instructions executed. It provides physical consistency of the data
//! when a page is being examined. Readers of the page acquire a share
//! (S) latch, while updaters acquire an exclusive (X) latch" (§1.1,
//! footnote 2). We wrap `parking_lot::RwLock` and count acquisitions so
//! the benchmark harness can report latch pathlengths.

use mohan_common::stats::Counter;
use mohan_obs::Histogram;
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{RawRwLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;
use std::time::Instant;

/// Owned share-mode latch guard (keeps the latch alive; storable in a
/// descent path without self-referential borrows).
pub type ShareGuard<T> = ArcRwLockReadGuard<RawRwLock, T>;
/// Owned exclusive-mode latch guard.
pub type ExclusiveGuard<T> = ArcRwLockWriteGuard<RawRwLock, T>;

/// Shared acquisition counters for a family of latches (e.g. all data
/// pages of a table, or all pages of one index).
#[derive(Debug, Default)]
pub struct LatchStats {
    /// Share-mode acquisitions.
    pub share: Counter,
    /// Exclusive-mode acquisitions.
    pub exclusive: Counter,
    /// Try-acquisitions that failed (used by crabbing retries).
    pub contended_tries: Counter,
    /// Blocking acquisitions that found the latch held and had to
    /// wait (a latch-contention event; cheap uncontended acquisitions
    /// never count here).
    pub wait_events: Counter,
    /// Time spent blocked per wait event (µs). Only the blocked branch
    /// records, so the uncontended fast path stays two atomic bumps.
    pub wait_us: Arc<Histogram>,
}

impl LatchStats {
    /// New zeroed stats, ready to share across latches.
    #[must_use]
    pub fn new() -> Arc<LatchStats> {
        Arc::new(LatchStats::default())
    }
}

/// A share/exclusive latch protecting one value (typically a page).
#[derive(Debug)]
pub struct Latch<T> {
    lock: Arc<RwLock<T>>,
    stats: Arc<LatchStats>,
}

impl<T> Latch<T> {
    /// Wrap `value` in a latch reporting to `stats`.
    pub fn new(value: T, stats: Arc<LatchStats>) -> Latch<T> {
        Latch {
            lock: Arc::new(RwLock::new(value)),
            stats,
        }
    }

    /// Acquire in share mode, returning an owned guard suitable for
    /// storing in a descent path.
    pub fn share_arc(&self) -> ShareGuard<T> {
        self.stats.share.bump();
        if self.lock.try_read().is_none() {
            self.stats.wait_events.bump();
            let started = Instant::now();
            let g = ShareGuard::lock(Arc::clone(&self.lock));
            self.stats.wait_us.record_micros(started.elapsed());
            return g;
        }
        ShareGuard::lock(Arc::clone(&self.lock))
    }

    /// Acquire in exclusive mode, returning an owned guard suitable
    /// for storing in a descent path (latch crabbing).
    pub fn exclusive_arc(&self) -> ExclusiveGuard<T> {
        self.stats.exclusive.bump();
        if self.lock.try_write().is_none() {
            self.stats.wait_events.bump();
            let started = Instant::now();
            let g = ExclusiveGuard::lock(Arc::clone(&self.lock));
            self.stats.wait_us.record_micros(started.elapsed());
            return g;
        }
        ExclusiveGuard::lock(Arc::clone(&self.lock))
    }

    /// Acquire in share (S) mode; blocks until granted.
    pub fn share(&self) -> RwLockReadGuard<'_, T> {
        self.stats.share.bump();
        match self.lock.try_read() {
            Some(g) => g,
            None => {
                self.stats.wait_events.bump();
                let started = Instant::now();
                let g = self.lock.read();
                self.stats.wait_us.record_micros(started.elapsed());
                g
            }
        }
    }

    /// Acquire in exclusive (X) mode; blocks until granted.
    pub fn exclusive(&self) -> RwLockWriteGuard<'_, T> {
        self.stats.exclusive.bump();
        match self.lock.try_write() {
            Some(g) => g,
            None => {
                self.stats.wait_events.bump();
                let started = Instant::now();
                let g = self.lock.write();
                self.stats.wait_us.record_micros(started.elapsed());
                g
            }
        }
    }

    /// Conditional exclusive acquisition (never blocks). Used by
    /// lock-free-ish paths that retry rather than risk latch deadlock.
    pub fn try_exclusive(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.lock.try_write() {
            Some(g) => {
                self.stats.exclusive.bump();
                Some(g)
            }
            None => {
                self.stats.contended_tries.bump();
                None
            }
        }
    }

    /// Conditional share acquisition (never blocks).
    pub fn try_share(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.lock.try_read() {
            Some(g) => {
                self.stats.share.bump();
                Some(g)
            }
            None => {
                self.stats.contended_tries.bump();
                None
            }
        }
    }

    /// Access the stats this latch reports to.
    #[must_use]
    pub fn stats(&self) -> &Arc<LatchStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counts_acquisitions() {
        let stats = LatchStats::new();
        let l = Latch::new(5u32, Arc::clone(&stats));
        {
            let g = l.share();
            assert_eq!(*g, 5);
        }
        {
            let mut g = l.exclusive();
            *g = 6;
        }
        assert_eq!(stats.share.get(), 1);
        assert_eq!(stats.exclusive.get(), 1);
    }

    #[test]
    fn try_exclusive_fails_under_share() {
        let l = Latch::new((), LatchStats::new());
        let _s = l.share();
        assert!(l.try_exclusive().is_none());
        assert_eq!(l.stats().contended_tries.get(), 1);
    }

    #[test]
    fn readers_are_concurrent() {
        let l = Arc::new(Latch::new(0u64, LatchStats::new()));
        let l2 = Arc::clone(&l);
        let g1 = l.share();
        let h = thread::spawn(move || {
            let g2 = l2.share();
            *g2
        });
        assert_eq!(h.join().unwrap(), 0);
        drop(g1);
    }

    #[test]
    fn exclusive_blocks_share() {
        let l = Arc::new(Latch::new(0u64, LatchStats::new()));
        let g = l.exclusive();
        assert!(l.try_share().is_none());
        drop(g);
        assert!(l.try_share().is_some());
    }
}
