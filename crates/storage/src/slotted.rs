//! Byte-accurate slotted data pages for heap records.
//!
//! Records grow from the front of the page; the slot directory grows
//! from the back. Slot numbers are *stable*: deleting a record leaves
//! an empty slot behind, so a RID (`page`,`slot`) never silently moves
//! — a property both NSF and SF depend on (keys carry RIDs, and the
//! SF visibility rule compares RIDs).
//!
//! Layout of the backing buffer:
//!
//! ```text
//! [0..2)  slot_count  (u16)
//! [2..4)  free_start  (u16, offset of next record byte)
//! [4..)   record heap ...           ... slot dir <- [len-4*count..len)
//! ```
//!
//! Each 4-byte slot entry is `(offset: u16, len: u16)`; `offset == 0`
//! marks a slot with no record (the header lives at 0). Among those,
//! `len == 1` marks a **reserved** slot: its record was deleted by a
//! transaction that has not committed yet, so the slot number must not
//! be reused until the deleter commits ([`SlottedPage::free_slot`]) or
//! its rollback restores the record at the same RID.

use crate::cache::PagePayload;
use mohan_common::{Error, Result, SlotId};

const HDR: usize = 4;
const SLOT_BYTES: usize = 4;

/// One slotted heap page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlottedPage {
    buf: Vec<u8>,
}

impl SlottedPage {
    /// Create an empty page with `size` usable bytes (including the
    /// header and slot directory).
    #[must_use]
    pub fn new(size: usize) -> SlottedPage {
        assert!(
            size >= 64 && size <= u16::MAX as usize,
            "page size out of range"
        );
        let mut buf = vec![0u8; size];
        write_u16(&mut buf, 0, 0);
        write_u16(&mut buf, 2, HDR as u16);
        SlottedPage { buf }
    }

    fn slot_count(&self) -> usize {
        read_u16(&self.buf, 0) as usize
    }

    fn free_start(&self) -> usize {
        read_u16(&self.buf, 2) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        write_u16(&mut self.buf, 0, n as u16);
    }

    fn set_free_start(&mut self, off: usize) {
        write_u16(&mut self.buf, 2, off as u16);
    }

    fn slot_entry_pos(&self, slot: usize) -> usize {
        self.buf.len() - (slot + 1) * SLOT_BYTES
    }

    fn slot_entry(&self, slot: usize) -> (usize, usize) {
        let p = self.slot_entry_pos(slot);
        (
            read_u16(&self.buf, p) as usize,
            read_u16(&self.buf, p + 2) as usize,
        )
    }

    fn set_slot_entry(&mut self, slot: usize, off: usize, len: usize) {
        let p = self.slot_entry_pos(slot);
        write_u16(&mut self.buf, p, off as u16);
        write_u16(&mut self.buf, p + 2, len as u16);
    }

    /// Number of slots ever used (including now-empty ones).
    #[must_use]
    pub fn slots(&self) -> u16 {
        self.slot_count() as u16
    }

    /// Number of live records.
    #[must_use]
    pub fn live_records(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != 0)
            .count()
    }

    /// Contiguous free bytes (before any compaction).
    #[must_use]
    pub fn contiguous_free(&self) -> usize {
        let dir_start = self.buf.len() - self.slot_count() * SLOT_BYTES;
        dir_start.saturating_sub(self.free_start())
    }

    /// Free bytes recoverable by compaction plus the contiguous tail.
    #[must_use]
    pub fn total_free(&self) -> usize {
        let live: usize = (0..self.slot_count())
            .map(|s| {
                let (off, len) = self.slot_entry(s);
                if off != 0 {
                    len
                } else {
                    0
                }
            })
            .sum();
        self.buf.len() - HDR - self.slot_count() * SLOT_BYTES - live
    }

    /// Would `insert` of `len` bytes succeed (possibly via compaction)?
    #[must_use]
    pub fn fits(&self, len: usize) -> bool {
        let dir_growth = if self.first_empty_slot().is_some() {
            0
        } else {
            SLOT_BYTES
        };
        self.total_free() >= len + dir_growth
    }

    fn first_empty_slot(&self) -> Option<usize> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s) == (0, 0))
    }

    /// Insert a record, reusing an empty slot if one exists.
    /// Returns the assigned slot, or `PageFull`.
    pub fn insert(&mut self, data: &[u8]) -> Result<SlotId> {
        let slot = match self.first_empty_slot() {
            Some(s) => s,
            None => self.slot_count(),
        };
        self.insert_at(SlotId(slot as u16), data)?;
        Ok(SlotId(slot as u16))
    }

    /// Insert a record at a *specific* slot (used by redo and by
    /// rollback of a delete, which must restore the original RID).
    /// The slot must be empty or beyond the current directory.
    pub fn insert_at(&mut self, slot: SlotId, data: &[u8]) -> Result<()> {
        let s = slot.0 as usize;
        if s < self.slot_count() && self.slot_entry(s).0 != 0 {
            return Err(Error::Corruption(format!("slot {s} already occupied")));
        }
        let new_slots = self.slot_count().max(s + 1);
        let dir_growth = (new_slots - self.slot_count()) * SLOT_BYTES;
        if self.total_free() < data.len() + dir_growth {
            return Err(Error::PageFull);
        }
        if new_slots > self.slot_count() {
            // Growing the directory moves its start downward; make sure
            // no record bytes live where the new entries will go.
            let new_dir_start = self.buf.len() - new_slots * SLOT_BYTES;
            if self.free_start() > new_dir_start {
                self.compact();
            }
            // Zero-filled entries are "empty".
            for extra in self.slot_count()..new_slots {
                let old_count = self.slot_count();
                self.set_slot_count(old_count + 1);
                self.set_slot_entry(extra, 0, 0);
            }
        }
        let dir_start = self.buf.len() - self.slot_count() * SLOT_BYTES;
        if dir_start - self.free_start() < data.len() {
            self.compact();
        }
        let off = self.free_start();
        debug_assert!(off + data.len() <= self.buf.len() - self.slot_count() * SLOT_BYTES);
        self.buf[off..off + data.len()].copy_from_slice(data);
        self.set_free_start(off + data.len());
        self.set_slot_entry(s, off, data.len());
        Ok(())
    }

    /// Read a record. `None` for empty or out-of-range slots.
    #[must_use]
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        let s = slot.0 as usize;
        if s >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(s);
        if off == 0 {
            return None;
        }
        Some(&self.buf[off..off + len])
    }

    /// Delete a record, returning its bytes. The slot becomes
    /// *reserved* (not reusable) until [`SlottedPage::free_slot`]
    /// releases it or a rollback restores the record.
    pub fn delete(&mut self, slot: SlotId) -> Result<Vec<u8>> {
        let old = self
            .get(slot)
            .ok_or_else(|| Error::NotFound(format!("record {slot}")))?
            .to_vec();
        self.set_slot_entry(slot.0 as usize, 0, 1);
        Ok(old)
    }

    /// Release a reserved slot for reuse (the deleter committed).
    /// Idempotent; a no-op on occupied or already-free slots.
    pub fn free_slot(&mut self, slot: SlotId) {
        let s = slot.0 as usize;
        if s < self.slot_count() && self.slot_entry(s) == (0, 1) {
            self.set_slot_entry(s, 0, 0);
        }
    }

    /// Is this slot reserved by an uncommitted delete?
    #[must_use]
    pub fn is_reserved(&self, slot: SlotId) -> bool {
        let s = slot.0 as usize;
        s < self.slot_count() && self.slot_entry(s) == (0, 1)
    }

    /// Slot numbers currently reserved (post-recovery sweep).
    #[must_use]
    pub fn reserved_slots(&self) -> Vec<SlotId> {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s) == (0, 1))
            .map(|s| SlotId(s as u16))
            .collect()
    }

    /// Replace a record in place, returning the old bytes. Compacts if
    /// needed; `PageFull` if the new image cannot fit.
    pub fn update(&mut self, slot: SlotId, data: &[u8]) -> Result<Vec<u8>> {
        let s = slot.0 as usize;
        let old = self
            .get(slot)
            .ok_or_else(|| Error::NotFound(format!("record {slot}")))?
            .to_vec();
        let (off, old_len) = self.slot_entry(s);
        if data.len() <= old_len {
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(s, off, data.len());
            return Ok(old);
        }
        // Needs more room: logically delete, then re-place.
        self.set_slot_entry(s, 0, 0);
        if self.total_free() < data.len() {
            // Roll the deletion back so the page is unchanged.
            self.set_slot_entry(s, off, old_len);
            return Err(Error::PageFull);
        }
        let dir_start = self.buf.len() - self.slot_count() * SLOT_BYTES;
        if dir_start - self.free_start() < data.len() {
            self.compact();
        }
        let noff = self.free_start();
        self.buf[noff..noff + data.len()].copy_from_slice(data);
        self.set_free_start(noff + data.len());
        self.set_slot_entry(s, noff, data.len());
        Ok(old)
    }

    /// Iterate live records as `(slot, bytes)` in slot order — the
    /// order the IB's key-extraction scan visits them.
    pub fn records(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            if off == 0 {
                None
            } else {
                Some((SlotId(s as u16), &self.buf[off..off + len]))
            }
        })
    }

    /// Defragment the record heap (slot numbers are preserved).
    pub fn compact(&mut self) {
        let live: Vec<(usize, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                if off == 0 {
                    None
                } else {
                    Some((s, self.buf[off..off + len].to_vec()))
                }
            })
            .collect();
        let mut cursor = HDR;
        for (s, data) in live {
            self.buf[cursor..cursor + data.len()].copy_from_slice(&data);
            self.set_slot_entry(s, cursor, data.len());
            cursor += data.len();
        }
        self.set_free_start(cursor);
    }
}

impl PagePayload for SlottedPage {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.buf);
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < HDR {
            return Err(Error::Corruption("slotted page too small".into()));
        }
        Ok(SlottedPage { buf: buf.to_vec() })
    }
}

fn read_u16(buf: &[u8], pos: usize) -> u16 {
    u16::from_be_bytes([buf[pos], buf[pos + 1]])
}

fn write_u16(buf: &mut [u8], pos: usize, v: u16) {
    buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new(256);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_leaves_stable_slot_numbers() {
        let mut p = SlottedPage::new(256);
        let s0 = p.insert(b"aa").unwrap();
        let s1 = p.insert(b"bb").unwrap();
        p.delete(s0).unwrap();
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"bb"[..]));
        // A deleted slot is *reserved* until freed: the next insert
        // must not take it.
        assert!(p.is_reserved(s0));
        let s2 = p.insert(b"cc").unwrap();
        assert_ne!(s2, s0);
        // After the deleter commits, the slot is reusable.
        p.free_slot(s0);
        let s3 = p.insert(b"dd").unwrap();
        assert_eq!(s3, s0);
        assert_eq!(p.reserved_slots(), Vec::<SlotId>::new());
    }

    #[test]
    fn insert_at_restores_exact_rid() {
        let mut p = SlottedPage::new(256);
        let s0 = p.insert(b"x").unwrap();
        let old = p.delete(s0).unwrap();
        p.insert_at(s0, &old).unwrap();
        assert_eq!(p.get(s0), Some(&b"x"[..]));
    }

    #[test]
    fn insert_at_rejects_occupied_slot() {
        let mut p = SlottedPage::new(256);
        let s0 = p.insert(b"x").unwrap();
        assert!(matches!(p.insert_at(s0, b"y"), Err(Error::Corruption(_))));
    }

    #[test]
    fn insert_at_beyond_directory_grows_it() {
        let mut p = SlottedPage::new(256);
        p.insert_at(SlotId(3), b"late").unwrap();
        assert_eq!(p.get(SlotId(3)), Some(&b"late"[..]));
        assert_eq!(p.get(SlotId(0)), None);
        assert_eq!(p.slots(), 4);
    }

    #[test]
    fn page_full_reported() {
        let mut p = SlottedPage::new(64);
        let data = [7u8; 30];
        p.insert(&data).unwrap();
        assert!(matches!(p.insert(&data), Err(Error::PageFull)));
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new(128);
        let s = p.insert(b"abcdef").unwrap();
        let old = p.update(s, b"xy").unwrap();
        assert_eq!(old, b"abcdef");
        assert_eq!(p.get(s), Some(&b"xy"[..]));
        let old2 = p.update(s, b"0123456789").unwrap();
        assert_eq!(old2, b"xy");
        assert_eq!(p.get(s), Some(&b"0123456789"[..]));
    }

    #[test]
    fn update_too_big_leaves_page_unchanged() {
        let mut p = SlottedPage::new(64);
        let s = p.insert(&[1u8; 20]).unwrap();
        p.insert(&[2u8; 20]).unwrap();
        let err = p.update(s, &[3u8; 40]).unwrap_err();
        assert!(matches!(err, Error::PageFull));
        assert_eq!(p.get(s), Some(&[1u8; 20][..]));
    }

    #[test]
    fn compaction_reclaims_space() {
        let mut p = SlottedPage::new(128);
        let s0 = p.insert(&[1u8; 30]).unwrap();
        let s1 = p.insert(&[2u8; 30]).unwrap();
        let s2 = p.insert(&[3u8; 30]).unwrap();
        p.delete(s0).unwrap();
        p.delete(s2).unwrap();
        // Free space is fragmented; a 50-byte record needs compaction.
        let s3 = p.insert(&[4u8; 50]).unwrap();
        assert_eq!(p.get(s1), Some(&[2u8; 30][..]));
        assert_eq!(p.get(s3), Some(&[4u8; 50][..]));
    }

    #[test]
    fn records_iterates_in_slot_order() {
        let mut p = SlottedPage::new(256);
        p.insert(b"a").unwrap();
        let s1 = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(s1).unwrap();
        let got: Vec<Vec<u8>> = p.records().map(|(_, d)| d.to_vec()).collect();
        assert_eq!(got, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut p = SlottedPage::new(256);
        p.insert(b"persist me").unwrap();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let q = SlottedPage::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    proptest! {
        /// Random op sequences against a model HashMap: slot stability,
        /// contents, and free-space accounting never diverge.
        #[test]
        fn prop_model_check(ops in prop::collection::vec(
            (0u8..3, prop::collection::vec(any::<u8>(), 1..24)), 0..60)) {
            let mut p = SlottedPage::new(512);
            let mut model: std::collections::HashMap<u16, Vec<u8>> =
                std::collections::HashMap::new();
            for (op, data) in ops {
                match op {
                    0 => {
                        if let Ok(s) = p.insert(&data) {
                            prop_assert!(!model.contains_key(&s.0));
                            model.insert(s.0, data);
                        }
                    }
                    1 => {
                        if let Some(&slot) = model.keys().min() {
                            let old = p.delete(SlotId(slot)).unwrap();
                            prop_assert_eq!(&old, model.get(&slot).unwrap());
                            model.remove(&slot);
                        }
                    }
                    _ => {
                        if let Some(&slot) = model.keys().max() {
                            if p.update(SlotId(slot), &data).is_ok() {
                                model.insert(slot, data);
                            }
                        }
                    }
                }
                for (&slot, val) in &model {
                    prop_assert_eq!(p.get(SlotId(slot)), Some(val.as_slice()));
                }
                prop_assert_eq!(p.live_records(), model.len());
            }
        }
    }
}
