//! Storage substrate: latched pages with an explicit volatile/durable
//! boundary.
//!
//! The paper assumes a buffer-managed, WAL-protected page store. This
//! crate provides the laptop-scale equivalent:
//!
//! * [`latch`] — share/exclusive page latches ("like a semaphore and
//!   very cheap", §1.1), with acquisition counters so benches can
//!   reproduce the paper's pathlength arguments.
//! * [`cache`] — a typed page cache, [`cache::PageCache`], that keeps a
//!   *volatile* in-memory image of every page plus a *durable* encoded
//!   image updated only by `force`. A simulated system failure drops
//!   all volatile state; restart decodes the durable images. This is
//!   the substitution for real disks documented in `DESIGN.md` §2.
//! * [`slotted`] — a byte-accurate slotted data-page layout for heap
//!   records.
//! * [`blob`] — a tiny forced-write key/value area used for
//!   checkpoint metadata (sort checkpoints, IB progress, catalog),
//!   standing in for the paper's "recording on stable storage".

#![warn(missing_docs)]

pub mod blob;
pub mod cache;
pub mod latch;
pub mod slotted;

pub use cache::{PageCache, PagePayload};
pub use latch::{ExclusiveGuard, Latch, LatchStats, ShareGuard};
pub use slotted::SlottedPage;
