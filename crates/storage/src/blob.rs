//! Forced-write metadata area ("stable storage").
//!
//! The paper repeatedly has the index builder "record on stable
//! storage" small pieces of progress information: the highest key
//! inserted so far (§2.2.3), sort-phase checkpoints (§5.1), merge
//! counters (§5.2), side-file positions (§3.2.5). A [`BlobStore`] is
//! that stable area: `put` is atomically durable (it models a forced
//! write of a checkpoint record), so its contents survive a simulated
//! crash unchanged.

use mohan_common::stats::Counter;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Durable key/value store for checkpoint metadata.
#[derive(Debug, Default)]
pub struct BlobStore {
    inner: Mutex<HashMap<String, Vec<u8>>>,
    /// Forced writes performed (each `put` is one stable-storage I/O).
    pub writes: Counter,
}

impl BlobStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// Durably record `value` under `key`, replacing any prior value.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        self.writes.bump();
        self.inner.lock().insert(key.to_string(), value);
    }

    /// Read back a value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.lock().get(key).cloned()
    }

    /// Durably remove a value (e.g. a completed build's progress
    /// record).
    pub fn remove(&self, key: &str) {
        self.writes.bump();
        self.inner.lock().remove(key);
    }

    /// Crash simulation hook: stable storage survives by definition,
    /// so this is a no-op kept for symmetry with the page caches.
    pub fn crash(&self) {}

    /// Keys currently present (diagnostics).
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let b = BlobStore::new();
        b.put("ib/progress", vec![1, 2, 3]);
        assert_eq!(b.get("ib/progress"), Some(vec![1, 2, 3]));
        b.remove("ib/progress");
        assert_eq!(b.get("ib/progress"), None);
        assert_eq!(b.writes.get(), 2);
    }

    #[test]
    fn survives_crash() {
        let b = BlobStore::new();
        b.put("k", vec![9]);
        b.crash();
        assert_eq!(b.get("k"), Some(vec![9]));
    }

    #[test]
    fn put_replaces() {
        let b = BlobStore::new();
        b.put("k", vec![1]);
        b.put("k", vec![2]);
        assert_eq!(b.get("k"), Some(vec![2]));
    }
}
