//! A typed, sharded page cache with an explicit volatile/durable
//! boundary.
//!
//! Real DBMS pages live on disk and are cached in a buffer pool. We
//! invert the emphasis: the *volatile* image (a decoded Rust value
//! behind a [`Latch`]) is primary, and the *durable* image (encoded
//! bytes, updated only by [`PageCache::force`]) models the disk. A
//! simulated system failure ([`PageCache::crash`]) discards every
//! volatile frame and all allocations that were never forced; restart
//! decodes the durable images on demand.
//!
//! The cache is partitioned into [`PAGE_SHARDS`] shards keyed by a
//! page-id hash. Each shard owns its own volatile frame map and
//! durable image map, so lookups and forces on different pages contend
//! only within a shard; the allocation cursor and the durable
//! high-water mark are shared atomics. The crash/restart semantics are
//! per-shard but observably identical to the unsharded cache.
//!
//! The write-ahead-log rule is enforced at the boundary: `force`
//! requires the caller to pass the WAL's flushed LSN and refuses to
//! write a page whose LSN is newer ("write-ahead logging", §1.1).

use crate::latch::{Latch, LatchStats};
use mohan_common::stats::{Counter, ShardDist};
use mohan_common::{Error, FileId, Lsn, PageId, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Number of shards each page cache is partitioned into (power of
/// two; the shard index is the top bits of a Fibonacci hash of the
/// page id).
pub const PAGE_SHARDS: usize = 16;

/// Something that can live in a page: encodable to / decodable from the
/// durable byte image.
pub trait PagePayload: Send + Sync + Sized + 'static {
    /// Serialize the page contents.
    fn encode(&self, out: &mut Vec<u8>);
    /// Deserialize page contents. Errors indicate corruption.
    fn decode(buf: &[u8]) -> Result<Self>;
}

/// A page's volatile image: its payload plus the recovery LSN of the
/// last logged change applied to it.
#[derive(Debug)]
pub struct PageBuf<T> {
    /// LSN of the newest log record applied to this page
    /// (`Page_LSN` in the paper's pseudo-code).
    pub lsn: Lsn,
    /// The decoded page contents.
    pub payload: T,
}

/// One cached page: identity plus latched buffer.
#[derive(Debug)]
pub struct Frame<T> {
    /// Page number within the owning file.
    pub id: PageId,
    /// The latch protecting the buffer (S for readers, X for
    /// updaters, per §1.1).
    pub latch: Latch<PageBuf<T>>,
}

/// I/O and allocation counters for one page cache.
#[derive(Debug)]
pub struct CacheStats {
    /// Frame lookups that found a volatile image.
    pub hits: Counter,
    /// Frame lookups that had to decode the durable image (a read
    /// I/O in the simulation).
    pub misses: Counter,
    /// Pages forced to the durable image (write I/Os).
    pub forces: Counter,
    /// Pages allocated.
    pub allocations: Counter,
    /// Simulated I/O batches issued by sequential scans (one batch
    /// reads `prefetch_pages` pages, §2.2.2).
    pub io_batches: Counter,
    /// Hit distribution across the cache's shards (shows whether the
    /// page-id hash is actually spreading the hot path).
    pub shard_hits: ShardDist,
}

impl Default for CacheStats {
    fn default() -> Self {
        CacheStats {
            hits: Counter::new(),
            misses: Counter::new(),
            forces: Counter::new(),
            allocations: Counter::new(),
            io_batches: Counter::new(),
            shard_hits: ShardDist::new(PAGE_SHARDS),
        }
    }
}

/// One cache partition: a volatile frame map plus the durable images
/// of the pages that hash here.
struct Shard<T> {
    volatile: RwLock<HashMap<PageId, Arc<Frame<T>>>>,
    durable: Mutex<HashMap<PageId, Vec<u8>>>,
}

impl<T> Shard<T> {
    fn new() -> Shard<T> {
        Shard {
            volatile: RwLock::new(HashMap::new()),
            durable: Mutex::new(HashMap::new()),
        }
    }
}

/// A crash-aware cache of typed pages forming one page file.
pub struct PageCache<T: PagePayload> {
    file: FileId,
    shards: Vec<Shard<T>>,
    /// Allocation cursor (volatile view): pages `< next_page` are
    /// allocated.
    next_page: AtomicU32,
    /// Durable allocation high-water mark: pages `< durable_count`
    /// are considered allocated after a crash.
    durable_count: AtomicU32,
    latch_stats: Arc<LatchStats>,
    /// Event counters for this cache.
    pub stats: CacheStats,
}

impl<T: PagePayload> PageCache<T> {
    /// Create an empty page file.
    #[must_use]
    pub fn new(file: FileId) -> PageCache<T> {
        PageCache {
            file,
            shards: (0..PAGE_SHARDS).map(|_| Shard::new()).collect(),
            next_page: AtomicU32::new(0),
            durable_count: AtomicU32::new(0),
            latch_stats: LatchStats::new(),
            stats: CacheStats::default(),
        }
    }

    /// Shard index for a page (Fibonacci hash so sequentially
    /// allocated pages spread instead of clustering).
    fn shard_of(id: PageId) -> usize {
        (u64::from(id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (PAGE_SHARDS - 1)
    }

    /// The file this cache backs.
    #[must_use]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Latch acquisition counters shared by all frames of this file.
    #[must_use]
    pub fn latch_stats(&self) -> &Arc<LatchStats> {
        &self.latch_stats
    }

    fn make_frame(&self, id: PageId, lsn: Lsn, payload: T) -> Arc<Frame<T>> {
        Arc::new(Frame {
            id,
            latch: Latch::new(PageBuf { lsn, payload }, Arc::clone(&self.latch_stats)),
        })
    }

    /// Allocate a fresh page holding `payload`. The allocation is
    /// volatile until the page is forced. The page id comes from a
    /// shared atomic cursor, so concurrent allocators never meet a
    /// lock.
    pub fn allocate(&self, payload: T) -> Arc<Frame<T>> {
        let id = PageId(self.next_page.fetch_add(1, Ordering::AcqRel));
        let frame = self.make_frame(id, Lsn::NULL, payload);
        self.shards[Self::shard_of(id)]
            .volatile
            .write()
            .insert(id, Arc::clone(&frame));
        self.stats.allocations.bump();
        frame
    }

    /// Number of allocated pages (volatile view).
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.next_page.load(Ordering::Acquire)
    }

    /// Fetch a page frame, decoding the durable image on a miss.
    /// Returns `NotFound` for never-allocated or crash-lost pages.
    pub fn frame(&self, id: PageId) -> Result<Arc<Frame<T>>> {
        let si = Self::shard_of(id);
        let shard = &self.shards[si];
        if let Some(f) = shard.volatile.read().get(&id) {
            self.stats.hits.bump();
            self.stats.shard_hits.bump(si);
            return Ok(Arc::clone(f));
        }
        // Miss: try the durable image. Hold the shard's volatile write
        // lock across the check-and-insert so two threads don't both
        // decode.
        let mut v = shard.volatile.write();
        if let Some(f) = v.get(&id) {
            self.stats.hits.bump();
            self.stats.shard_hits.bump(si);
            return Ok(Arc::clone(f));
        }
        let d = shard.durable.lock();
        let Some(bytes) = d.get(&id) else {
            return Err(Error::NotFound(format!("{} {id}", self.file)));
        };
        let payload = T::decode(&bytes[8..])?;
        let mut l8 = [0u8; 8];
        l8.copy_from_slice(&bytes[..8]);
        let lsn = Lsn(u64::from_be_bytes(l8));
        drop(d);
        let frame = self.make_frame(id, lsn, payload);
        v.insert(id, Arc::clone(&frame));
        self.stats.misses.bump();
        Ok(frame)
    }

    /// Fetch `id`, creating an empty page from `make` if it does not
    /// resolve (recovery: redo must recreate pages that were allocated
    /// but never forced before the crash). Grows the allocation cursor
    /// past `id` if needed.
    pub fn ensure_with(&self, id: PageId, make: impl FnOnce() -> T) -> Result<Arc<Frame<T>>> {
        if self.exists(id) {
            return self.frame(id);
        }
        let shard = &self.shards[Self::shard_of(id)];
        let mut v = shard.volatile.write();
        if let Some(f) = v.get(&id) {
            return Ok(Arc::clone(f));
        }
        let frame = self.make_frame(id, Lsn::NULL, make());
        v.insert(id, Arc::clone(&frame));
        self.next_page.fetch_max(id.0 + 1, Ordering::AcqRel);
        self.stats.allocations.bump();
        Ok(frame)
    }

    /// True if `id` currently resolves to a page (volatile or durable).
    #[must_use]
    pub fn exists(&self, id: PageId) -> bool {
        let shard = &self.shards[Self::shard_of(id)];
        shard.volatile.read().contains_key(&id) || shard.durable.lock().contains_key(&id)
    }

    /// Force one page to the durable image. Enforces the WAL rule: the
    /// page's LSN must not exceed `flushed_lsn`.
    pub fn force(&self, id: PageId, flushed_lsn: Lsn) -> Result<()>
    where
        T: PagePayload,
    {
        let frame = self.frame(id)?;
        let buf = frame.latch.share();
        if buf.lsn > flushed_lsn {
            return Err(Error::Corruption(format!(
                "WAL violation: forcing {} {id} with page LSN {} > flushed {}",
                self.file, buf.lsn, flushed_lsn
            )));
        }
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&buf.lsn.0.to_be_bytes());
        buf.payload.encode(&mut bytes);
        drop(buf);
        self.shards[Self::shard_of(id)]
            .durable
            .lock()
            .insert(id, bytes);
        self.durable_count.fetch_max(id.0 + 1, Ordering::AcqRel);
        self.stats.forces.bump();
        Ok(())
    }

    /// Force every allocated page (used by checkpoints that require a
    /// consistent durable image, §3.2.4).
    pub fn force_all(&self, flushed_lsn: Lsn) -> Result<()> {
        let mut pages: Vec<PageId> = Vec::new();
        for shard in &self.shards {
            pages.extend(shard.volatile.read().keys().copied());
        }
        for id in pages {
            self.force(id, flushed_lsn)?;
        }
        Ok(())
    }

    /// Deallocate every page with id ≥ `from`, volatile *and* durable.
    /// This is the §3.2.4 trick: after an SF crash, index pages
    /// allocated past the last checkpoint are put back in the
    /// deallocated state.
    pub fn truncate_from(&self, from: PageId) {
        for shard in &self.shards {
            shard.volatile.write().retain(|id, _| *id < from);
            shard.durable.lock().retain(|id, _| *id < from);
        }
        self.next_page.fetch_min(from.0, Ordering::AcqRel);
        self.durable_count.fetch_min(from.0, Ordering::AcqRel);
    }

    /// Simulated system failure: drop all volatile frames (in every
    /// shard) and reset the allocation cursor to the durable
    /// high-water mark.
    pub fn crash(&self) {
        for shard in &self.shards {
            shard.volatile.write().clear();
        }
        self.next_page.store(
            self.durable_count.load(Ordering::Acquire),
            Ordering::Release,
        );
    }

    /// Durable page high-water mark (what restart will see).
    #[must_use]
    pub fn durable_pages(&self) -> u32 {
        self.durable_count.load(Ordering::Acquire)
    }
}

impl<T: PagePayload> std::fmt::Debug for PageCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("file", &self.file)
            .field("pages", &self.num_pages())
            .field("durable_pages", &self.durable_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl PagePayload for Blob {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0);
        }
        fn decode(buf: &[u8]) -> Result<Self> {
            Ok(Blob(buf.to_vec()))
        }
    }

    fn cache() -> PageCache<Blob> {
        PageCache::new(FileId(1))
    }

    #[test]
    fn allocate_assigns_dense_ids() {
        let c = cache();
        assert_eq!(c.allocate(Blob(vec![1])).id, PageId(0));
        assert_eq!(c.allocate(Blob(vec![2])).id, PageId(1));
        assert_eq!(c.num_pages(), 2);
    }

    #[test]
    fn unforced_pages_die_in_a_crash() {
        let c = cache();
        let f = c.allocate(Blob(vec![1, 2, 3]));
        assert_eq!(f.id, PageId(0));
        c.crash();
        assert_eq!(c.num_pages(), 0);
        assert!(c.frame(PageId(0)).is_err());
    }

    #[test]
    fn forced_pages_survive_a_crash() {
        let c = cache();
        let f = c.allocate(Blob(vec![9, 9]));
        {
            let mut b = f.latch.exclusive();
            b.lsn = Lsn(5);
            b.payload.0.push(7);
        }
        c.force(PageId(0), Lsn(5)).unwrap();
        c.crash();
        assert_eq!(c.num_pages(), 1);
        let f2 = c.frame(PageId(0)).unwrap();
        let b = f2.latch.share();
        assert_eq!(b.payload, Blob(vec![9, 9, 7]));
        assert_eq!(b.lsn, Lsn(5));
    }

    #[test]
    fn crash_loses_unforced_changes_to_forced_pages() {
        let c = cache();
        let f = c.allocate(Blob(vec![1]));
        c.force(PageId(0), Lsn::NULL).unwrap();
        {
            let mut b = f.latch.exclusive();
            b.payload.0.push(2);
        }
        c.crash();
        let f2 = c.frame(PageId(0)).unwrap();
        assert_eq!(f2.latch.share().payload, Blob(vec![1]));
    }

    #[test]
    fn force_enforces_wal_rule() {
        let c = cache();
        let f = c.allocate(Blob(vec![]));
        f.latch.exclusive().lsn = Lsn(10);
        let err = c.force(PageId(0), Lsn(9)).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
        c.force(PageId(0), Lsn(10)).unwrap();
    }

    #[test]
    fn truncate_from_deallocates_tail() {
        let c = cache();
        for i in 0..5u8 {
            let f = c.allocate(Blob(vec![i]));
            c.force(f.id, Lsn::NULL).unwrap();
        }
        c.truncate_from(PageId(2));
        assert_eq!(c.num_pages(), 2);
        assert!(c.frame(PageId(2)).is_err());
        assert!(c.frame(PageId(1)).is_ok());
        // Reallocation reuses the truncated ids.
        assert_eq!(c.allocate(Blob(vec![])).id, PageId(2));
        // Durable state was truncated too.
        c.crash();
        assert_eq!(c.num_pages(), 2);
    }

    #[test]
    fn stats_count_hits_misses_forces() {
        let c = cache();
        let f = c.allocate(Blob(vec![1]));
        c.force(f.id, Lsn::NULL).unwrap();
        let _ = c.frame(PageId(0)).unwrap(); // hit (inside force there was one too)
        c.crash();
        let _ = c.frame(PageId(0)).unwrap(); // miss -> decode
        assert!(c.stats.hits.get() >= 1);
        assert_eq!(c.stats.misses.get(), 1);
        assert_eq!(c.stats.forces.get(), 1);
    }

    #[test]
    fn force_all_then_crash_preserves_everything() {
        let c = cache();
        for i in 0..10u8 {
            let f = c.allocate(Blob(vec![i]));
            f.latch.exclusive().lsn = Lsn(u64::from(i));
        }
        c.force_all(Lsn(100)).unwrap();
        c.crash();
        assert_eq!(c.num_pages(), 10);
        for i in 0..10u8 {
            let f = c.frame(PageId(u32::from(i))).unwrap();
            assert_eq!(f.latch.share().payload, Blob(vec![i]));
        }
    }

    #[test]
    fn concurrent_fetch_decodes_once() {
        let c = Arc::new(cache());
        let f = c.allocate(Blob(vec![42]));
        c.force(f.id, Lsn::NULL).unwrap();
        c.crash();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.frame(PageId(0)).unwrap().latch.share().payload.0[0]
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(c.stats.misses.get(), 1);
    }

    #[test]
    fn concurrent_allocations_get_unique_dense_ids() {
        let c = Arc::new(cache());
        let handles: Vec<_> = (0..8u8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| c.allocate(Blob(vec![t])).id.0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[399], 399);
        assert_eq!(c.num_pages(), 400);
    }

    #[test]
    fn hits_spread_across_shards() {
        let c = cache();
        let n = 64u32;
        for i in 0..n {
            c.allocate(Blob(vec![i as u8]));
        }
        for i in 0..n {
            let _ = c.frame(PageId(i)).unwrap();
        }
        assert_eq!(c.stats.shard_hits.total(), c.stats.hits.get());
        let populated = c
            .stats
            .shard_hits
            .snapshot()
            .iter()
            .filter(|&&n| n > 0)
            .count();
        assert!(
            populated > PAGE_SHARDS / 2,
            "hash clustered: {populated} shards hit"
        );
    }
}
