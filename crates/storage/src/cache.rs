//! A typed page cache with an explicit volatile/durable boundary.
//!
//! Real DBMS pages live on disk and are cached in a buffer pool. We
//! invert the emphasis: the *volatile* image (a decoded Rust value
//! behind a [`Latch`]) is primary, and the *durable* image (encoded
//! bytes, updated only by [`PageCache::force`]) models the disk. A
//! simulated system failure ([`PageCache::crash`]) discards every
//! volatile frame and all allocations that were never forced; restart
//! decodes the durable images on demand.
//!
//! The write-ahead-log rule is enforced at the boundary: `force`
//! requires the caller to pass the WAL's flushed LSN and refuses to
//! write a page whose LSN is newer ("write-ahead logging", §1.1).

use crate::latch::{Latch, LatchStats};
use mohan_common::stats::Counter;
use mohan_common::{Error, FileId, Lsn, PageId, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Something that can live in a page: encodable to / decodable from the
/// durable byte image.
pub trait PagePayload: Send + Sync + Sized + 'static {
    /// Serialize the page contents.
    fn encode(&self, out: &mut Vec<u8>);
    /// Deserialize page contents. Errors indicate corruption.
    fn decode(buf: &[u8]) -> Result<Self>;
}

/// A page's volatile image: its payload plus the recovery LSN of the
/// last logged change applied to it.
#[derive(Debug)]
pub struct PageBuf<T> {
    /// LSN of the newest log record applied to this page
    /// (`Page_LSN` in the paper's pseudo-code).
    pub lsn: Lsn,
    /// The decoded page contents.
    pub payload: T,
}

/// One cached page: identity plus latched buffer.
#[derive(Debug)]
pub struct Frame<T> {
    /// Page number within the owning file.
    pub id: PageId,
    /// The latch protecting the buffer (S for readers, X for
    /// updaters, per §1.1).
    pub latch: Latch<PageBuf<T>>,
}

/// I/O and allocation counters for one page cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Frame lookups that found a volatile image.
    pub hits: Counter,
    /// Frame lookups that had to decode the durable image (a read
    /// I/O in the simulation).
    pub misses: Counter,
    /// Pages forced to the durable image (write I/Os).
    pub forces: Counter,
    /// Pages allocated.
    pub allocations: Counter,
    /// Simulated I/O batches issued by sequential scans (one batch
    /// reads `prefetch_pages` pages, §2.2.2).
    pub io_batches: Counter,
}

struct DurableState {
    images: HashMap<PageId, Vec<u8>>,
    /// Durable allocation high-water mark: pages `< page_count` are
    /// considered allocated after a crash.
    page_count: u32,
}

struct VolatileState<T> {
    frames: HashMap<PageId, Arc<Frame<T>>>,
    next_page: u32,
}

/// A crash-aware cache of typed pages forming one page file.
pub struct PageCache<T: PagePayload> {
    file: FileId,
    volatile: RwLock<VolatileState<T>>,
    durable: Mutex<DurableState>,
    latch_stats: Arc<LatchStats>,
    /// Event counters for this cache.
    pub stats: CacheStats,
}

impl<T: PagePayload> PageCache<T> {
    /// Create an empty page file.
    #[must_use]
    pub fn new(file: FileId) -> PageCache<T> {
        PageCache {
            file,
            volatile: RwLock::new(VolatileState { frames: HashMap::new(), next_page: 0 }),
            durable: Mutex::new(DurableState { images: HashMap::new(), page_count: 0 }),
            latch_stats: LatchStats::new(),
            stats: CacheStats::default(),
        }
    }

    /// The file this cache backs.
    #[must_use]
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Latch acquisition counters shared by all frames of this file.
    #[must_use]
    pub fn latch_stats(&self) -> &Arc<LatchStats> {
        &self.latch_stats
    }

    /// Allocate a fresh page holding `payload`. The allocation is
    /// volatile until the page is forced.
    pub fn allocate(&self, payload: T) -> Arc<Frame<T>> {
        let mut v = self.volatile.write();
        let id = PageId(v.next_page);
        v.next_page += 1;
        let frame = Arc::new(Frame {
            id,
            latch: Latch::new(
                PageBuf { lsn: Lsn::NULL, payload },
                Arc::clone(&self.latch_stats),
            ),
        });
        v.frames.insert(id, Arc::clone(&frame));
        self.stats.allocations.bump();
        frame
    }

    /// Number of allocated pages (volatile view).
    #[must_use]
    pub fn num_pages(&self) -> u32 {
        self.volatile.read().next_page
    }

    /// Fetch a page frame, decoding the durable image on a miss.
    /// Returns `NotFound` for never-allocated or crash-lost pages.
    pub fn frame(&self, id: PageId) -> Result<Arc<Frame<T>>> {
        if let Some(f) = self.volatile.read().frames.get(&id) {
            self.stats.hits.bump();
            return Ok(Arc::clone(f));
        }
        // Miss: try the durable image. Hold the volatile write lock
        // across the check-and-insert so two threads don't both decode.
        let mut v = self.volatile.write();
        if let Some(f) = v.frames.get(&id) {
            self.stats.hits.bump();
            return Ok(Arc::clone(f));
        }
        let d = self.durable.lock();
        let Some(bytes) = d.images.get(&id) else {
            return Err(Error::NotFound(format!("{} {id}", self.file)));
        };
        let payload = T::decode(&bytes[8..])?;
        let mut l8 = [0u8; 8];
        l8.copy_from_slice(&bytes[..8]);
        let lsn = Lsn(u64::from_be_bytes(l8));
        drop(d);
        let frame = Arc::new(Frame {
            id,
            latch: Latch::new(PageBuf { lsn, payload }, Arc::clone(&self.latch_stats)),
        });
        v.frames.insert(id, Arc::clone(&frame));
        self.stats.misses.bump();
        Ok(frame)
    }

    /// Fetch `id`, creating an empty page from `make` if it does not
    /// resolve (recovery: redo must recreate pages that were allocated
    /// but never forced before the crash). Grows the allocation cursor
    /// past `id` if needed.
    pub fn ensure_with(&self, id: PageId, make: impl FnOnce() -> T) -> Result<Arc<Frame<T>>> {
        if self.exists(id) {
            return self.frame(id);
        }
        let mut v = self.volatile.write();
        if let Some(f) = v.frames.get(&id) {
            return Ok(Arc::clone(f));
        }
        let frame = Arc::new(Frame {
            id,
            latch: Latch::new(
                PageBuf { lsn: Lsn::NULL, payload: make() },
                Arc::clone(&self.latch_stats),
            ),
        });
        v.frames.insert(id, Arc::clone(&frame));
        v.next_page = v.next_page.max(id.0 + 1);
        self.stats.allocations.bump();
        Ok(frame)
    }

    /// True if `id` currently resolves to a page (volatile or durable).
    #[must_use]
    pub fn exists(&self, id: PageId) -> bool {
        self.volatile.read().frames.contains_key(&id) || self.durable.lock().images.contains_key(&id)
    }

    /// Force one page to the durable image. Enforces the WAL rule: the
    /// page's LSN must not exceed `flushed_lsn`.
    pub fn force(&self, id: PageId, flushed_lsn: Lsn) -> Result<()>
    where
        T: PagePayload,
    {
        let frame = self.frame(id)?;
        let buf = frame.latch.share();
        if buf.lsn > flushed_lsn {
            return Err(Error::Corruption(format!(
                "WAL violation: forcing {} {id} with page LSN {} > flushed {}",
                self.file, buf.lsn, flushed_lsn
            )));
        }
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&buf.lsn.0.to_be_bytes());
        buf.payload.encode(&mut bytes);
        drop(buf);
        let mut d = self.durable.lock();
        d.images.insert(id, bytes);
        d.page_count = d.page_count.max(id.0 + 1);
        self.stats.forces.bump();
        Ok(())
    }

    /// Force every allocated page (used by checkpoints that require a
    /// consistent durable image, §3.2.4).
    pub fn force_all(&self, flushed_lsn: Lsn) -> Result<()> {
        let pages: Vec<PageId> = {
            let v = self.volatile.read();
            v.frames.keys().copied().collect()
        };
        for id in pages {
            self.force(id, flushed_lsn)?;
        }
        Ok(())
    }

    /// Deallocate every page with id ≥ `from`, volatile *and* durable.
    /// This is the §3.2.4 trick: after an SF crash, index pages
    /// allocated past the last checkpoint are put back in the
    /// deallocated state.
    pub fn truncate_from(&self, from: PageId) {
        let mut v = self.volatile.write();
        v.frames.retain(|id, _| *id < from);
        v.next_page = v.next_page.min(from.0);
        let mut d = self.durable.lock();
        d.images.retain(|id, _| *id < from);
        d.page_count = d.page_count.min(from.0);
    }

    /// Simulated system failure: drop all volatile frames and reset the
    /// allocation cursor to the durable high-water mark.
    pub fn crash(&self) {
        let mut v = self.volatile.write();
        v.frames.clear();
        v.next_page = self.durable.lock().page_count;
    }

    /// Durable page high-water mark (what restart will see).
    #[must_use]
    pub fn durable_pages(&self) -> u32 {
        self.durable.lock().page_count
    }
}

impl<T: PagePayload> std::fmt::Debug for PageCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("file", &self.file)
            .field("pages", &self.num_pages())
            .field("durable_pages", &self.durable_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl PagePayload for Blob {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0);
        }
        fn decode(buf: &[u8]) -> Result<Self> {
            Ok(Blob(buf.to_vec()))
        }
    }

    fn cache() -> PageCache<Blob> {
        PageCache::new(FileId(1))
    }

    #[test]
    fn allocate_assigns_dense_ids() {
        let c = cache();
        assert_eq!(c.allocate(Blob(vec![1])).id, PageId(0));
        assert_eq!(c.allocate(Blob(vec![2])).id, PageId(1));
        assert_eq!(c.num_pages(), 2);
    }

    #[test]
    fn unforced_pages_die_in_a_crash() {
        let c = cache();
        let f = c.allocate(Blob(vec![1, 2, 3]));
        assert_eq!(f.id, PageId(0));
        c.crash();
        assert_eq!(c.num_pages(), 0);
        assert!(c.frame(PageId(0)).is_err());
    }

    #[test]
    fn forced_pages_survive_a_crash() {
        let c = cache();
        let f = c.allocate(Blob(vec![9, 9]));
        {
            let mut b = f.latch.exclusive();
            b.lsn = Lsn(5);
            b.payload.0.push(7);
        }
        c.force(PageId(0), Lsn(5)).unwrap();
        c.crash();
        assert_eq!(c.num_pages(), 1);
        let f2 = c.frame(PageId(0)).unwrap();
        let b = f2.latch.share();
        assert_eq!(b.payload, Blob(vec![9, 9, 7]));
        assert_eq!(b.lsn, Lsn(5));
    }

    #[test]
    fn crash_loses_unforced_changes_to_forced_pages() {
        let c = cache();
        let f = c.allocate(Blob(vec![1]));
        c.force(PageId(0), Lsn::NULL).unwrap();
        {
            let mut b = f.latch.exclusive();
            b.payload.0.push(2);
        }
        c.crash();
        let f2 = c.frame(PageId(0)).unwrap();
        assert_eq!(f2.latch.share().payload, Blob(vec![1]));
    }

    #[test]
    fn force_enforces_wal_rule() {
        let c = cache();
        let f = c.allocate(Blob(vec![]));
        f.latch.exclusive().lsn = Lsn(10);
        let err = c.force(PageId(0), Lsn(9)).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
        c.force(PageId(0), Lsn(10)).unwrap();
    }

    #[test]
    fn truncate_from_deallocates_tail() {
        let c = cache();
        for i in 0..5u8 {
            let f = c.allocate(Blob(vec![i]));
            c.force(f.id, Lsn::NULL).unwrap();
        }
        c.truncate_from(PageId(2));
        assert_eq!(c.num_pages(), 2);
        assert!(c.frame(PageId(2)).is_err());
        assert!(c.frame(PageId(1)).is_ok());
        // Reallocation reuses the truncated ids.
        assert_eq!(c.allocate(Blob(vec![])).id, PageId(2));
        // Durable state was truncated too.
        c.crash();
        assert_eq!(c.num_pages(), 2);
    }

    #[test]
    fn stats_count_hits_misses_forces() {
        let c = cache();
        let f = c.allocate(Blob(vec![1]));
        c.force(f.id, Lsn::NULL).unwrap();
        let _ = c.frame(PageId(0)).unwrap(); // hit (inside force there was one too)
        c.crash();
        let _ = c.frame(PageId(0)).unwrap(); // miss -> decode
        assert!(c.stats.hits.get() >= 1);
        assert_eq!(c.stats.misses.get(), 1);
        assert_eq!(c.stats.forces.get(), 1);
    }

    #[test]
    fn force_all_then_crash_preserves_everything() {
        let c = cache();
        for i in 0..10u8 {
            let f = c.allocate(Blob(vec![i]));
            f.latch.exclusive().lsn = Lsn(u64::from(i));
        }
        c.force_all(Lsn(100)).unwrap();
        c.crash();
        assert_eq!(c.num_pages(), 10);
        for i in 0..10u8 {
            let f = c.frame(PageId(u32::from(i))).unwrap();
            assert_eq!(f.latch.share().payload, Blob(vec![i]));
        }
    }

    #[test]
    fn concurrent_fetch_decodes_once() {
        let c = Arc::new(cache());
        let f = c.allocate(Blob(vec![42]));
        c.force(f.id, Lsn::NULL).unwrap();
        c.crash();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.frame(PageId(0)).unwrap().latch.share().payload.0[0]
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        assert_eq!(c.stats.misses.get(), 1);
    }
}
