//! Deterministic crash injection.
//!
//! The paper's restartability arguments (§2.2.3 checkpointing, §3.2.4
//! SF checkpoints, §5 restartable sort) can only be tested by killing
//! the index builder at precise points. A [`FailpointSet`] is a named
//! set of countdown triggers: code under test calls
//! [`FailpointSet::hit`] at interesting sites; when a trigger's
//! countdown reaches zero the site returns
//! [`Error::InjectedCrash`](crate::error::Error::InjectedCrash), which
//! callers propagate to the crash orchestrator.
//!
//! Failpoints are *instance-scoped* (carried by the `Db`), not global,
//! so parallel tests never interfere with each other. For binaries and
//! CI, a set can also be armed from an environment-style spec string
//! (`name:count,...`) via [`FailpointSet::arm_from_spec`] /
//! [`FailpointSet::arm_from_env`], so crash points are reachable
//! without code changes.

use crate::error::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Environment variable read by [`FailpointSet::arm_from_env`].
pub const FAILPOINTS_ENV: &str = "MOHAN_FAILPOINTS";

/// Every failpoint site instrumented in the engine. Specs naming other
/// sites still arm (tests invent private sites freely), but
/// [`FailpointSet::arm_from_spec`] warns about them so a typo in
/// `MOHAN_FAILPOINTS` is visible instead of silently inert.
pub const KNOWN_SITES: &[&str] = &[
    "build.drain",
    "build.insert",
    "build.load",
    "build.reduce",
    "build.scan",
    "build.scan.record",
    "nsf.insert.key",
    "primary.scan.record",
    "sf.drain.op",
    "sf.load.key",
];

/// One arm/disarm-able set of failpoints.
#[derive(Default, Debug)]
pub struct FailpointSet {
    inner: Mutex<HashMap<String, Trigger>>,
}

#[derive(Debug)]
struct Trigger {
    /// Remaining hits before firing. Fires when a hit sees 0.
    remaining: u64,
    /// Number of times the site has actually fired.
    fired: u64,
}

/// Shared handle to a failpoint set.
pub type Failpoints = Arc<FailpointSet>;

impl FailpointSet {
    /// Create an empty (fully disarmed) set.
    #[must_use]
    pub fn new() -> Failpoints {
        Arc::new(FailpointSet::default())
    }

    /// Arm `site` to fire on the `(skip + 1)`-th hit.
    pub fn arm_after(&self, site: &str, skip: u64) {
        self.inner.lock().insert(
            site.to_owned(),
            Trigger {
                remaining: skip,
                fired: 0,
            },
        );
    }

    /// Arm `site` to fire on the next hit.
    pub fn arm(&self, site: &str) {
        self.arm_after(site, 0);
    }

    /// Arm every trigger named in a `site:count,...` spec string:
    /// `count` is the 1-based hit that fires (so `build.scan:1` fires
    /// on the first hit; `sf.drain.op:50` on the 50th). A bare `site`
    /// means `site:1`. Site names outside [`KNOWN_SITES`] are armed
    /// anyway but warned about on stderr (a typo would otherwise be
    /// silently inert). Returns the number of sites armed, or a
    /// description of the first malformed item.
    pub fn arm_from_spec(&self, spec: &str) -> std::result::Result<usize, String> {
        let mut armed = 0;
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (site, count) = match item.split_once(':') {
                Some((site, count)) => {
                    let n: u64 = count
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad count in failpoint spec item '{item}'"))?;
                    if n == 0 {
                        return Err(format!("count must be >= 1 in '{item}'"));
                    }
                    (site.trim(), n)
                }
                None => (item, 1),
            };
            if site.is_empty() {
                return Err(format!("empty site name in '{item}'"));
            }
            if !KNOWN_SITES.contains(&site) {
                eprintln!(
                    "warning: failpoint site '{site}' is not instrumented anywhere \
                     in the engine (known sites: {})",
                    KNOWN_SITES.join(", ")
                );
            }
            self.arm_after(site, count - 1);
            armed += 1;
        }
        Ok(armed)
    }

    /// Arm triggers from the [`FAILPOINTS_ENV`] environment variable,
    /// if set. Returns the number of sites armed.
    pub fn arm_from_env(&self) -> std::result::Result<usize, String> {
        match std::env::var(FAILPOINTS_ENV) {
            Ok(spec) => self.arm_from_spec(&spec),
            Err(_) => Ok(0),
        }
    }

    /// Disarm `site`.
    pub fn disarm(&self, site: &str) {
        self.inner.lock().remove(site);
    }

    /// Disarm everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Number of times `site` has fired.
    #[must_use]
    pub fn fired(&self, site: &str) -> u64 {
        self.inner.lock().get(site).map_or(0, |t| t.fired)
    }

    /// Called by instrumented code. Returns `Err(InjectedCrash)` when
    /// the armed countdown for `site` expires; otherwise `Ok(())`.
    pub fn hit(&self, site: &'static str) -> Result<()> {
        let mut map = self.inner.lock();
        if let Some(t) = map.get_mut(site) {
            if t.remaining == 0 {
                t.fired += 1;
                // One-shot: a fired trigger disarms itself so recovery
                // code re-running the same path does not crash again.
                let fired = t.fired;
                map.remove(site);
                let _ = fired;
                return Err(Error::InjectedCrash(site));
            }
            t.remaining -= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_site_never_fires() {
        let fp = FailpointSet::new();
        for _ in 0..100 {
            fp.hit("nope").unwrap();
        }
    }

    #[test]
    fn fires_after_countdown_then_disarms() {
        let fp = FailpointSet::new();
        fp.arm_after("x", 2);
        assert!(fp.hit("x").is_ok());
        assert!(fp.hit("x").is_ok());
        let err = fp.hit("x").unwrap_err();
        assert_eq!(err, Error::InjectedCrash("x"));
        // One-shot: re-hitting after firing is fine.
        assert!(fp.hit("x").is_ok());
    }

    #[test]
    fn arm_zero_fires_immediately() {
        let fp = FailpointSet::new();
        fp.arm("y");
        assert!(fp.hit("y").unwrap_err().is_crash());
    }

    #[test]
    fn clear_disarms_all() {
        let fp = FailpointSet::new();
        fp.arm("a");
        fp.arm("b");
        fp.clear();
        assert!(fp.hit("a").is_ok());
        assert!(fp.hit("b").is_ok());
    }

    #[test]
    fn spec_string_arms_counts() {
        let fp = FailpointSet::new();
        assert_eq!(fp.arm_from_spec("a:1, b:3 ,c").unwrap(), 3);
        // a fires on the 1st hit, c (bare) likewise.
        assert!(fp.hit("a").unwrap_err().is_crash());
        assert!(fp.hit("c").unwrap_err().is_crash());
        // b fires on the 3rd hit.
        assert!(fp.hit("b").is_ok());
        assert!(fp.hit("b").is_ok());
        assert!(fp.hit("b").unwrap_err().is_crash());
    }

    #[test]
    fn spec_string_rejects_garbage() {
        let fp = FailpointSet::new();
        assert!(fp.arm_from_spec("a:x").is_err());
        assert!(fp.arm_from_spec("a:0").is_err());
        assert!(fp.arm_from_spec(":3").is_err());
        assert_eq!(fp.arm_from_spec("").unwrap(), 0);
        assert_eq!(fp.arm_from_spec(" , ,").unwrap(), 0);
    }

    #[test]
    fn spec_comma_list_arms_every_item_with_whitespace_tolerance() {
        let fp = FailpointSet::new();
        let n = fp
            .arm_from_spec("build.scan:2,  sf.drain.op:1 ,\tbuild.load")
            .unwrap();
        assert_eq!(n, 3);
        assert!(fp.hit("build.scan").is_ok());
        assert!(fp.hit("build.scan").unwrap_err().is_crash());
        assert!(fp.hit("sf.drain.op").unwrap_err().is_crash());
        assert!(fp.hit("build.load").unwrap_err().is_crash());
    }

    #[test]
    fn spec_unknown_sites_still_arm() {
        // The warning is advisory; the trigger must work so tests can
        // keep using private site names.
        let fp = FailpointSet::new();
        assert_eq!(fp.arm_from_spec("definitely.not.a.site:1").unwrap(), 1);
        assert!(fp.hit("definitely.not.a.site").unwrap_err().is_crash());
    }

    #[test]
    fn spec_error_reports_the_offending_item() {
        let fp = FailpointSet::new();
        let err = fp.arm_from_spec("build.scan:1,b:oops").unwrap_err();
        assert!(err.contains("b:oops"), "{err}");
        let err = fp.arm_from_spec("a:0").unwrap_err();
        assert!(err.contains("a:0"), "{err}");
    }

    #[test]
    fn known_sites_list_is_sorted_and_nonempty() {
        // Sorted so the warning's site dump is scannable and the list
        // diff-stable as sites are added.
        assert!(!KNOWN_SITES.is_empty());
        let mut sorted = KNOWN_SITES.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KNOWN_SITES);
    }

    #[test]
    fn independent_sites() {
        let fp = FailpointSet::new();
        fp.arm("a");
        assert!(fp.hit("b").is_ok());
        assert!(fp.hit("a").is_err());
    }
}
