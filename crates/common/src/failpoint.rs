//! Deterministic crash injection.
//!
//! The paper's restartability arguments (§2.2.3 checkpointing, §3.2.4
//! SF checkpoints, §5 restartable sort) can only be tested by killing
//! the index builder at precise points. A [`FailpointSet`] is a named
//! set of countdown triggers: code under test calls
//! [`FailpointSet::hit`] at interesting sites; when a trigger's
//! countdown reaches zero the site returns
//! [`Error::InjectedCrash`](crate::error::Error::InjectedCrash), which
//! callers propagate to the crash orchestrator.
//!
//! Failpoints are *instance-scoped* (carried by the `Db`), not global,
//! so parallel tests never interfere with each other.

use crate::error::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One arm/disarm-able set of failpoints.
#[derive(Default, Debug)]
pub struct FailpointSet {
    inner: Mutex<HashMap<&'static str, Trigger>>,
}

#[derive(Debug)]
struct Trigger {
    /// Remaining hits before firing. Fires when a hit sees 0.
    remaining: u64,
    /// Number of times the site has actually fired.
    fired: u64,
}

/// Shared handle to a failpoint set.
pub type Failpoints = Arc<FailpointSet>;

impl FailpointSet {
    /// Create an empty (fully disarmed) set.
    #[must_use]
    pub fn new() -> Failpoints {
        Arc::new(FailpointSet::default())
    }

    /// Arm `site` to fire on the `(skip + 1)`-th hit.
    pub fn arm_after(&self, site: &'static str, skip: u64) {
        self.inner.lock().insert(
            site,
            Trigger {
                remaining: skip,
                fired: 0,
            },
        );
    }

    /// Arm `site` to fire on the next hit.
    pub fn arm(&self, site: &'static str) {
        self.arm_after(site, 0);
    }

    /// Disarm `site`.
    pub fn disarm(&self, site: &'static str) {
        self.inner.lock().remove(site);
    }

    /// Disarm everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Number of times `site` has fired.
    #[must_use]
    pub fn fired(&self, site: &'static str) -> u64 {
        self.inner.lock().get(site).map_or(0, |t| t.fired)
    }

    /// Called by instrumented code. Returns `Err(InjectedCrash)` when
    /// the armed countdown for `site` expires; otherwise `Ok(())`.
    pub fn hit(&self, site: &'static str) -> Result<()> {
        let mut map = self.inner.lock();
        if let Some(t) = map.get_mut(site) {
            if t.remaining == 0 {
                t.fired += 1;
                // One-shot: a fired trigger disarms itself so recovery
                // code re-running the same path does not crash again.
                let fired = t.fired;
                map.remove(site);
                let _ = fired;
                return Err(Error::InjectedCrash(site));
            }
            t.remaining -= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_site_never_fires() {
        let fp = FailpointSet::new();
        for _ in 0..100 {
            fp.hit("nope").unwrap();
        }
    }

    #[test]
    fn fires_after_countdown_then_disarms() {
        let fp = FailpointSet::new();
        fp.arm_after("x", 2);
        assert!(fp.hit("x").is_ok());
        assert!(fp.hit("x").is_ok());
        let err = fp.hit("x").unwrap_err();
        assert_eq!(err, Error::InjectedCrash("x"));
        // One-shot: re-hitting after firing is fine.
        assert!(fp.hit("x").is_ok());
    }

    #[test]
    fn arm_zero_fires_immediately() {
        let fp = FailpointSet::new();
        fp.arm("y");
        assert!(fp.hit("y").unwrap_err().is_crash());
    }

    #[test]
    fn clear_disarms_all() {
        let fp = FailpointSet::new();
        fp.arm("a");
        fp.arm("b");
        fp.clear();
        assert!(fp.hit("a").is_ok());
        assert!(fp.hit("b").is_ok());
    }

    #[test]
    fn independent_sites() {
        let fp = FailpointSet::new();
        fp.arm("a");
        assert!(fp.hit("b").is_ok());
        assert!(fp.hit("a").is_err());
    }
}
