//! Order-preserving key encoding and the `<key value, RID>` index
//! entry.
//!
//! The paper's indexes store keys of the form `<key value, RID>` where
//! the key value is the concatenation of the indexed columns' values
//! (§1.1). We reproduce that: a record is a tuple of `i64` columns
//! (plus an optional string column payload), and a [`KeyValue`] is the
//! order-preserving byte concatenation of the chosen columns, so byte
//! comparison equals column-wise comparison.

use crate::ids::Rid;
use std::fmt;

/// An index key value: an opaque byte string whose lexicographic order
/// is the index order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyValue(pub Vec<u8>);

impl KeyValue {
    /// Empty key; sorts before every other key.
    pub const fn empty() -> KeyValue {
        KeyValue(Vec::new())
    }

    /// Encode a single signed integer so that byte order equals numeric
    /// order (flip the sign bit, then big-endian).
    #[must_use]
    pub fn from_i64(v: i64) -> KeyValue {
        let mut k = KeyValue::empty();
        k.push_i64(v);
        k
    }

    /// Encode a composite key from several integers, preserving
    /// lexicographic tuple order.
    #[must_use]
    pub fn from_i64s(vs: &[i64]) -> KeyValue {
        let mut k = KeyValue(Vec::with_capacity(vs.len() * 8));
        for &v in vs {
            k.push_i64(v);
        }
        k
    }

    /// Encode a string key. A terminator byte keeps prefixes ordered
    /// before their extensions even when another column follows.
    #[must_use]
    pub fn from_str_key(s: &str) -> KeyValue {
        let mut k = KeyValue::empty();
        k.push_str_col(s);
        k
    }

    /// Append an order-preserving `i64` column.
    pub fn push_i64(&mut self, v: i64) {
        let biased = (v as u64) ^ (1u64 << 63);
        self.0.extend_from_slice(&biased.to_be_bytes());
    }

    /// Append a string column followed by a `0x00` terminator.
    ///
    /// Interior NUL bytes are escaped as `0x00 0xFF` so that the
    /// encoding stays order-preserving and unambiguous.
    pub fn push_str_col(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.0.push(b);
            if b == 0 {
                self.0.push(0xFF);
            }
        }
        self.0.push(0);
    }

    /// Decode the first 8 bytes back into an `i64` (inverse of
    /// [`KeyValue::push_i64`] for single-column integer keys).
    #[must_use]
    pub fn first_i64(&self) -> Option<i64> {
        if self.0.len() < 8 {
            return None;
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[..8]);
        Some((u64::from_be_bytes(b) ^ (1u64 << 63)) as i64)
    }

    /// Length of the encoded key in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the key is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the raw encoded bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for KeyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.first_i64() {
            if self.0.len() == 8 {
                return write!(f, "Key({v})");
            }
        }
        write!(f, "Key(0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl From<i64> for KeyValue {
    fn from(v: i64) -> Self {
        KeyValue::from_i64(v)
    }
}

/// A complete index entry `<key value, RID>`.
///
/// Entries order by key value first and RID second; in a *nonunique*
/// index two entries are "the same key" only if both components match
/// (§2.2.3: "for a nonunique index, the key must match completely
/// (`<key value, RID>`) for rejection").
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexEntry {
    /// Encoded key value (concatenated indexed columns).
    pub key: KeyValue,
    /// Record the key was extracted from.
    pub rid: Rid,
}

impl IndexEntry {
    /// Build an entry.
    #[must_use]
    pub fn new(key: KeyValue, rid: Rid) -> IndexEntry {
        IndexEntry { key, rid }
    }

    /// Entry with an integer key, convenient in tests and examples.
    #[must_use]
    pub fn from_i64(key: i64, rid: Rid) -> IndexEntry {
        IndexEntry {
            key: KeyValue::from_i64(key),
            rid,
        }
    }

    /// Encoded size used for page-capacity accounting: key bytes plus
    /// a fixed per-entry overhead (RID + flags + slot bookkeeping).
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.key.len() + 10
    }

    /// Serialize into `out` (length-prefixed key, packed RID).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.key.len() as u32).to_be_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out.extend_from_slice(&self.rid.pack().to_be_bytes());
    }

    /// Deserialize from `buf` starting at `pos`; advances `pos`.
    /// Returns `None` on truncated input.
    #[must_use]
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<IndexEntry> {
        if buf.len() < *pos + 4 {
            return None;
        }
        let mut l4 = [0u8; 4];
        l4.copy_from_slice(&buf[*pos..*pos + 4]);
        let klen = u32::from_be_bytes(l4) as usize;
        *pos += 4;
        if buf.len() < *pos + klen + 8 {
            return None;
        }
        let key = KeyValue(buf[*pos..*pos + klen].to_vec());
        *pos += klen;
        let mut r8 = [0u8; 8];
        r8.copy_from_slice(&buf[*pos..*pos + 8]);
        *pos += 8;
        Some(IndexEntry {
            key,
            rid: Rid::unpack(u64::from_be_bytes(r8)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i64_encoding_preserves_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(
                KeyValue::from_i64(w[0]) < KeyValue::from_i64(w[1]),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn i64_roundtrip() {
        for v in [i64::MIN, -7, 0, 7, i64::MAX] {
            assert_eq!(KeyValue::from_i64(v).first_i64(), Some(v));
        }
    }

    #[test]
    fn composite_keys_order_like_tuples() {
        let a = KeyValue::from_i64s(&[1, 100]);
        let b = KeyValue::from_i64s(&[2, -100]);
        let c = KeyValue::from_i64s(&[2, 0]);
        assert!(a < b && b < c);
    }

    #[test]
    fn string_prefix_orders_before_extension() {
        let a = KeyValue::from_str_key("ab");
        let b = KeyValue::from_str_key("abc");
        assert!(a < b);
    }

    #[test]
    fn string_then_int_composite() {
        let mut a = KeyValue::from_str_key("x");
        a.push_i64(5);
        let mut b = KeyValue::from_str_key("x");
        b.push_i64(6);
        assert!(a < b);
    }

    #[test]
    fn interior_nul_is_escaped() {
        let a = KeyValue::from_str_key("a\0b");
        let b = KeyValue::from_str_key("a");
        assert!(b < a);
    }

    #[test]
    fn entry_orders_by_key_then_rid() {
        let e1 = IndexEntry::from_i64(1, Rid::new(9, 9));
        let e2 = IndexEntry::from_i64(2, Rid::new(0, 0));
        let e3 = IndexEntry::from_i64(2, Rid::new(0, 1));
        assert!(e1 < e2 && e2 < e3);
    }

    #[test]
    fn entry_encode_decode_roundtrip() {
        let e = IndexEntry::from_i64(-31337, Rid::new(12, 3));
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(IndexEntry::decode(&buf, &mut pos), Some(e));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_truncated_returns_none() {
        let e = IndexEntry::from_i64(5, Rid::new(1, 1));
        let mut buf = Vec::new();
        e.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(IndexEntry::decode(&buf[..cut], &mut pos), None);
        }
    }

    proptest! {
        #[test]
        fn prop_i64_order(a in any::<i64>(), b in any::<i64>()) {
            let (ka, kb) = (KeyValue::from_i64(a), KeyValue::from_i64(b));
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        }

        #[test]
        fn prop_tuple_order(a in prop::collection::vec(any::<i64>(), 1..4),
                            b in prop::collection::vec(any::<i64>(), 1..4)) {
            // Compare only equal-length tuples: variable-length integer
            // tuples are not comparable without headers.
            if a.len() == b.len() {
                let (ka, kb) = (KeyValue::from_i64s(&a), KeyValue::from_i64s(&b));
                prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
            }
        }

        #[test]
        fn prop_string_order(a in ".{0,12}", b in ".{0,12}") {
            let (ka, kb) = (KeyValue::from_str_key(&a), KeyValue::from_str_key(&b));
            prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), ka.cmp(&kb));
        }

        #[test]
        fn prop_entry_roundtrip(k in prop::collection::vec(any::<u8>(), 0..40),
                                page in any::<u32>(), slot in any::<u16>()) {
            let e = IndexEntry::new(KeyValue(k), Rid::new(page, slot));
            let mut buf = Vec::new();
            e.encode(&mut buf);
            let mut pos = 0;
            prop_assert_eq!(IndexEntry::decode(&buf, &mut pos), Some(e));
        }
    }
}
