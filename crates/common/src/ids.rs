//! Typed identifiers used throughout the engine.
//!
//! Every identifier is a thin newtype over an integer so the compiler
//! keeps pages, slots, log sequence numbers and transactions apart.

use std::fmt;

/// Identifier of a page within one page file.
///
/// Pages are numbered densely from zero in allocation order, which is
/// what makes the paper's clustering argument observable: a bottom-up
/// build allocates leaves in ascending [`PageId`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    /// First page of a file.
    pub const ZERO: PageId = PageId(0);

    /// The next page id in allocation order.
    #[must_use]
    pub fn next(self) -> PageId {
        PageId(self.0 + 1)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Slot number of a record within a slotted data page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotId(pub u16);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Record identifier: `(data page, slot)`.
///
/// RIDs order first by page and then by slot, which is exactly the
/// order in which the index builder's sequential scan visits records.
/// The SF algorithm's visibility rule (`Target-RID < Current-RID`)
/// relies on this ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rid {
    /// Data page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Rid {
    /// Smallest possible RID; used as the initial `Current-RID` of an
    /// SF scan (nothing is visible yet).
    pub const MIN: Rid = Rid {
        page: PageId(0),
        slot: SlotId(0),
    };

    /// Largest possible RID; the paper's `infinity`, set by the SF
    /// index builder once the scan finishes so every later update sees
    /// the index as visible.
    pub const MAX: Rid = Rid {
        page: PageId(u32::MAX),
        slot: SlotId(u16::MAX),
    };

    /// Construct a RID from raw page / slot numbers.
    #[must_use]
    pub fn new(page: u32, slot: u16) -> Rid {
        Rid {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }

    /// Pack into a `u64` so a scan cursor can live in an atomic.
    /// Ordering of the packed value matches `Ord` on [`Rid`].
    #[must_use]
    pub fn pack(self) -> u64 {
        (u64::from(self.page.0) << 16) | u64::from(self.slot.0)
    }

    /// Inverse of [`Rid::pack`].
    #[must_use]
    pub fn unpack(v: u64) -> Rid {
        Rid {
            page: PageId((v >> 16) as u32),
            slot: SlotId((v & 0xFFFF) as u16),
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.page, self.slot)
    }
}

/// Log sequence number. Monotonically increasing; `Lsn(0)` means "no
/// LSN" (e.g. a page that has never been logged against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN.
    pub const NULL: Lsn = Lsn(0);

    /// True unless this is the null LSN.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a page file (a heap table's data file, an index file,
/// a sort-run file, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Identifier of a heap table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

/// Identifier of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idx{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_ordering_is_page_then_slot() {
        assert!(Rid::new(1, 9) < Rid::new(2, 0));
        assert!(Rid::new(1, 1) < Rid::new(1, 2));
        assert!(Rid::new(3, 0) > Rid::new(2, 65535));
    }

    #[test]
    fn rid_pack_roundtrip_preserves_order() {
        let rids = [
            Rid::MIN,
            Rid::new(0, 1),
            Rid::new(1, 0),
            Rid::new(1, 77),
            Rid::new(u32::MAX - 1, 5),
            Rid::MAX,
        ];
        for w in rids.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].pack() < w[1].pack());
        }
        for r in rids {
            assert_eq!(Rid::unpack(r.pack()), r);
        }
    }

    #[test]
    fn min_and_max_bound_everything() {
        let r = Rid::new(123, 45);
        assert!(Rid::MIN <= r && r <= Rid::MAX);
    }

    #[test]
    fn lsn_null_is_invalid() {
        assert!(!Lsn::NULL.is_valid());
        assert!(Lsn(1).is_valid());
    }

    #[test]
    fn page_next_increments() {
        assert_eq!(PageId(7).next(), PageId(8));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rid::new(4, 2).to_string(), "P4.s2");
        assert_eq!(Lsn(9).to_string(), "lsn:9");
        assert_eq!(TxId(3).to_string(), "T3");
        assert_eq!(IndexId(1).to_string(), "idx1");
        assert_eq!(TableId(1).to_string(), "tbl1");
        assert_eq!(FileId(1).to_string(), "F1");
    }
}
