//! Engine-wide error type.

use crate::ids::{IndexId, Rid, TxId};
use std::fmt;

/// Convenient alias used across all crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Every failure the engine can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Inserting a key into a unique index would duplicate a committed
    /// key value (§2.2.3).
    UniqueViolation {
        /// Index that rejected the insert.
        index: IndexId,
        /// Record whose committed key collided.
        existing: Rid,
    },
    /// A lock request timed out; we treat timeout as deadlock
    /// resolution and abort the requester.
    LockTimeout {
        /// Transaction whose request timed out.
        tx: TxId,
        /// Human-readable lock name.
        name: String,
    },
    /// A conditional lock request could not be granted immediately.
    LockBusy,
    /// The referenced record / key / page does not exist.
    NotFound(String),
    /// A page ran out of space for an in-place operation.
    PageFull,
    /// An internal invariant was violated; indicates a bug.
    Corruption(String),
    /// The index build was cancelled by the user.
    BuildCancelled,
    /// A simulated system failure injected through
    /// [`crate::failpoint`]. Callers propagate it to the crash
    /// orchestrator, which then discards volatile state.
    InjectedCrash(&'static str),
    /// The transaction is not active (already committed / rolled back).
    TxNotActive(TxId),
    /// An operation was attempted against a dropped or never-created
    /// index.
    NoSuchIndex(IndexId),
    /// The index exists but is still being built and is not yet
    /// available as an access path for retrievals (§2.2.1).
    IndexNotReadable(IndexId),
    /// A statement required an open transaction on the session
    /// (commit/rollback with nothing to end).
    NoOpenTx,
    /// `BEGIN` was issued while the session already holds an open
    /// transaction; the engine does not nest transactions.
    TxAlreadyOpen(TxId),
    /// A write was attempted against an engine running as a
    /// replication follower. Writes must go to the primary until the
    /// follower is promoted.
    NotWritable,
    /// A follower read was refused because replication lag exceeded
    /// the configured staleness bound.
    ReplicaStale {
        /// Replication lag, in LSNs, when the read was refused.
        lag: u64,
    },
    /// A caller-supplied argument was structurally invalid (empty spec
    /// list, zero worker count, unknown option). A statement-level
    /// error, never an engine invariant violation.
    InvalidArg(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UniqueViolation { index, existing } => {
                write!(
                    f,
                    "unique key value violation in {index} (committed key at {existing})"
                )
            }
            Error::LockTimeout { tx, name } => {
                write!(
                    f,
                    "{tx} timed out waiting for lock {name} (treated as deadlock)"
                )
            }
            Error::LockBusy => write!(f, "conditional lock not available"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::PageFull => write!(f, "page full"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::BuildCancelled => write!(f, "index build cancelled"),
            Error::InjectedCrash(site) => write!(f, "injected system crash at failpoint '{site}'"),
            Error::TxNotActive(tx) => write!(f, "{tx} is not active"),
            Error::NoSuchIndex(idx) => write!(f, "no such index {idx}"),
            Error::IndexNotReadable(idx) => {
                write!(f, "index {idx} is still being built and cannot serve reads")
            }
            Error::NoOpenTx => write!(f, "no open transaction on this session"),
            Error::TxAlreadyOpen(tx) => {
                write!(f, "{tx} is already open on this session")
            }
            Error::NotWritable => {
                write!(f, "engine is a replication follower and refuses writes")
            }
            Error::ReplicaStale { lag } => {
                write!(
                    f,
                    "follower read refused: replication lag {lag} LSNs over bound"
                )
            }
            Error::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// True if this error is a simulated crash that should bubble all
    /// the way to the crash orchestrator.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, Error::InjectedCrash(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IndexId;

    #[test]
    fn display_is_informative() {
        let e = Error::UniqueViolation {
            index: IndexId(2),
            existing: Rid::new(1, 1),
        };
        assert!(e.to_string().contains("idx2"));
        assert!(e.to_string().contains("P1.s1"));
    }

    #[test]
    fn crash_detection() {
        assert!(Error::InjectedCrash("x").is_crash());
        assert!(!Error::PageFull.is_crash());
    }
}
