//! Lightweight atomic event counters.
//!
//! The 1992 paper argues in *pathlengths*: lock calls saved, log
//! records avoided, tree traversals skipped. The benchmark harness
//! reproduces those arguments by counting the events exactly, so every
//! subsystem exposes a stats struct built from [`Counter`]s.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// Stripes per [`StripedCounter`] (power of two).
const COUNTER_STRIPES: usize = 8;

/// One counter stripe, padded to its own cache line so concurrent
/// writers on different stripes never ping-pong a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// Each thread picks a home stripe once (round-robin) and sticks
    /// to it.
    static HOME_STRIPE: usize = {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) & (COUNTER_STRIPES - 1)
    };
}

/// A write-mostly event counter striped across cache lines: `bump`
/// and `add` touch only the calling thread's home stripe, `get` sums
/// all stripes. Use for counters on hot multi-threaded paths (e.g.
/// per-append WAL volume) where a single shared [`Counter`] line
/// would be contended; reads are exact at any quiescent point.
#[derive(Debug, Default)]
pub struct StripedCounter {
    stripes: [PaddedU64; COUNTER_STRIPES],
}

impl StripedCounter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> StripedCounter {
        StripedCounter::default()
    }

    /// Add one.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        HOME_STRIPE.with(|&s| self.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Current value (sum over stripes).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.swap(0, Ordering::Relaxed))
            .sum()
    }
}

/// A relaxed atomic maximum tracker (e.g. peak side-file backlog).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// New gauge at zero.
    #[must_use]
    pub const fn new() -> MaxGauge {
        MaxGauge(AtomicU64::new(0))
    }

    /// Record an observation; keeps the maximum.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for MaxGauge {
    fn clone(&self) -> Self {
        MaxGauge(AtomicU64::new(self.get()))
    }
}

/// Per-shard event distribution for a partitioned structure (buffer
/// pool shards, free-space-map shards). Beyond the total, the *shape*
/// of the distribution is the interesting datum: a hot shard means the
/// hash is not spreading the load and the partitioning buys nothing.
#[derive(Debug)]
pub struct ShardDist {
    shards: Vec<Counter>,
}

impl ShardDist {
    /// New distribution over `n` shards (all zero).
    #[must_use]
    pub fn new(n: usize) -> ShardDist {
        ShardDist {
            shards: (0..n).map(|_| Counter::new()).collect(),
        }
    }

    /// Number of shards tracked.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Add one event to `shard`.
    pub fn bump(&self, shard: usize) {
        self.shards[shard].bump();
    }

    /// Add `n` events to `shard`.
    pub fn add(&self, shard: usize, n: u64) {
        self.shards[shard].add(n);
    }

    /// Events recorded on `shard`.
    #[must_use]
    pub fn get(&self, shard: usize) -> u64 {
        self.shards[shard].get()
    }

    /// Sum over all shards.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.shards.iter().map(Counter::get).sum()
    }

    /// Point-in-time copy of every shard's count.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.shards.iter().map(Counter::get).collect()
    }

    /// Hottest shard's count (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.shards.iter().map(Counter::get).max().unwrap_or(0)
    }

    /// Load-balance quality: hottest shard's share of a perfectly even
    /// spread (1.0 = even, `shard_count` = everything on one shard).
    /// Returns 0.0 when no events were recorded.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let even = total as f64 / self.shards.len() as f64;
        self.max() as f64 / even
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn shard_dist_tracks_shape() {
        let d = ShardDist::new(4);
        d.bump(0);
        d.add(1, 3);
        d.bump(1);
        assert_eq!(d.shard_count(), 4);
        assert_eq!(d.get(1), 4);
        assert_eq!(d.total(), 5);
        assert_eq!(d.max(), 4);
        assert_eq!(d.snapshot(), vec![1, 4, 0, 0]);
        // 4 events on the hottest of 4 shards vs an even spread of
        // 5/4: imbalance = 4 / 1.25 = 3.2.
        assert!((d.imbalance() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn shard_dist_empty_is_balanced() {
        let d = ShardDist::new(8);
        assert_eq!(d.total(), 0);
        assert_eq!(d.imbalance(), 0.0);
    }

    #[test]
    fn gauge_keeps_max() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(7);
        g.observe(5);
        assert_eq!(g.get(), 7);
    }
}
