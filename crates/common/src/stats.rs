//! Lightweight atomic event counters.
//!
//! The 1992 paper argues in *pathlengths*: lock calls saved, log
//! records avoided, tree traversals skipped. The benchmark harness
//! reproduces those arguments by counting the events exactly, so every
//! subsystem exposes a stats struct built from [`Counter`]s.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    #[must_use]
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// A relaxed atomic maximum tracker (e.g. peak side-file backlog).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// New gauge at zero.
    #[must_use]
    pub const fn new() -> MaxGauge {
        MaxGauge(AtomicU64::new(0))
    }

    /// Record an observation; keeps the maximum.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for MaxGauge {
    fn clone(&self) -> Self {
        MaxGauge(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.bump();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_keeps_max() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(7);
        g.observe(5);
        assert_eq!(g.get(), 7);
    }
}
