//! Engine configuration knobs.

/// Tunable parameters shared by the whole engine. All sizes are chosen
/// so that laptop-scale workloads exercise the same page-level
/// mechanics (splits, prefetch batches, checkpoint intervals) the paper
/// describes for very large tables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Usable byte capacity of a data page (slotted heap page).
    pub data_page_size: usize,
    /// Usable byte capacity of an index page (leaf or internal).
    pub index_page_size: usize,
    /// Fraction of an index leaf left free by bulk / IB inserts for
    /// future growth (§2.2.3: "the proper amount of desired free space
    /// ... is left in the leaf pages").
    pub index_fill_factor: f64,
    /// Pages fetched per simulated I/O during the IB's sequential scan
    /// (§2.2.2 sequential prefetch).
    pub prefetch_pages: usize,
    /// IB checkpoints its progress every this many keys inserted
    /// (§2.2.3 periodic checkpointing).
    pub ib_checkpoint_every_keys: usize,
    /// Sort-phase checkpoint interval, in extracted keys (§5.1).
    pub sort_checkpoint_every_keys: usize,
    /// Merge-phase checkpoint interval, in output keys (§5.2).
    pub merge_checkpoint_every_keys: usize,
    /// Replacement-selection workspace: number of keys the tournament
    /// tree holds during run formation.
    pub sort_workspace_keys: usize,
    /// Maximum input streams merged at once; more runs ⇒ multi-pass.
    pub merge_fan_in: usize,
    /// Lock-wait timeout in milliseconds; expiry is treated as a
    /// deadlock and aborts the waiter.
    pub lock_timeout_ms: u64,
    /// Side-file entries the IB applies per batch (and between
    /// drain-phase checkpoints) while catching up (§3.2.5).
    pub side_file_batch: usize,
    /// Sort the side-file before applying it (§3.2.5 optimization).
    pub side_file_sorted_apply: bool,
    /// Maximum keys the NSF IB hands to the index manager in one
    /// multi-key insert call (§2.2.3).
    pub ib_multi_key_batch: usize,
    /// NSF remembered-path optimization (§2.2.3); ablation switch.
    pub ib_remembered_path: bool,
    /// Quiesce updates while creating an NSF descriptor (§2.2.1).
    /// `false` selects the paper's no-quiesce alternative (§3.2.3):
    /// transactions straddling the creation are handled by the
    /// visible-index-count comparison during rollback.
    pub nsf_descriptor_quiesce: bool,
    /// Footnote 3: make an NSF index *gradually* readable for key
    /// ranges below the builder's committed high-key watermark.
    pub nsf_gradual_reads: bool,
    /// This engine is a replication follower: redo applies
    /// `CatalogUpdate` records (index DDL shipped in the WAL stream)
    /// instead of treating them as no-ops the way a primary's own
    /// restart does, where the catalog blob is authoritative.
    pub replica: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            data_page_size: 4096,
            index_page_size: 2048,
            index_fill_factor: 0.9,
            prefetch_pages: 8,
            ib_checkpoint_every_keys: 10_000,
            sort_checkpoint_every_keys: 20_000,
            merge_checkpoint_every_keys: 20_000,
            sort_workspace_keys: 4096,
            merge_fan_in: 16,
            lock_timeout_ms: 2_000,
            side_file_batch: 512,
            side_file_sorted_apply: true,
            ib_multi_key_batch: 64,
            ib_remembered_path: true,
            nsf_descriptor_quiesce: true,
            nsf_gradual_reads: false,
            replica: false,
        }
    }
}

impl EngineConfig {
    /// A configuration with tiny pages so unit tests exercise splits,
    /// multi-page heaps and multi-run sorts with few records.
    #[must_use]
    pub fn small() -> EngineConfig {
        EngineConfig {
            data_page_size: 256,
            index_page_size: 256,
            index_fill_factor: 0.9,
            prefetch_pages: 2,
            ib_checkpoint_every_keys: 64,
            sort_checkpoint_every_keys: 64,
            merge_checkpoint_every_keys: 64,
            sort_workspace_keys: 16,
            merge_fan_in: 4,
            lock_timeout_ms: 500,
            side_file_batch: 8,
            side_file_sorted_apply: true,
            ib_multi_key_batch: 4,
            ib_remembered_path: true,
            nsf_descriptor_quiesce: true,
            nsf_gradual_reads: false,
            replica: false,
        }
    }
}

/// Environment variable overriding the server's I/O backend choice
/// (same spellings as [`IoBackendChoice::parse`]). Read by
/// `ServerConfig::default`, so every test server and tool in the
/// workspace can be switched without touching call sites — how CI
/// runs the loopback suites under each backend.
pub const IO_BACKEND_ENV: &str = "MOHAN_IO_BACKEND";

/// Environment variable enabling the server's Postgres-protocol
/// listener. A bare port number binds `127.0.0.1:<port>`; a value
/// containing `:` is used as the full bind address. Read by
/// `ServerConfig::default`.
pub const PG_PORT_ENV: &str = "MOHAN_PG_PORT";

/// Environment variable enabling the server's HTTP sidecar listener
/// (`/metrics`, `/healthz`, `/readyz`). Same address spelling as
/// [`PG_PORT_ENV`]: a bare port binds `127.0.0.1:<port>`, a value
/// containing `:` is the full bind address. Read by
/// `ServerConfig::default`.
pub const HTTP_PORT_ENV: &str = "MOHAN_HTTP_PORT";

/// Environment variable setting the head-based trace sampling rate:
/// keep one trace in `N` (`0`/`1` keep every trace). Read by
/// `ServerConfig::default` and applied process-wide at server start.
pub const TRACE_SAMPLE_ENV: &str = "MOHAN_TRACE_SAMPLE";

/// Which I/O readiness backend the server's connection layer uses.
///
/// Lives in `mohan-common` (not the server crate) so binaries and
/// benches can parse/carry the choice without depending on server
/// internals. Resolution against what the host actually supports
/// happens in the server's reactor module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackendChoice {
    /// Pick the best available: epoll where it exists, else poll(2).
    #[default]
    Auto,
    /// Linux epoll(7) — O(ready) dispatch. Startup fails if the host
    /// has no epoll.
    Epoll,
    /// Portable poll(2) — O(registered fds) per wait, still
    /// event-driven.
    Poll,
    /// Legacy sleep-polling worker loop (500µs ticks). Kept as the
    /// no-reactor fallback and as the baseline the reactor's wakeup
    /// metrics are compared against.
    ThreadedSleep,
}

impl IoBackendChoice {
    /// Parse a CLI/env spelling. Accepts `auto`, `epoll`, `poll`,
    /// and `threaded` (also `threaded-sleep`/`sleep`).
    #[must_use]
    pub fn parse(s: &str) -> Option<IoBackendChoice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(IoBackendChoice::Auto),
            "epoll" => Some(IoBackendChoice::Epoll),
            "poll" => Some(IoBackendChoice::Poll),
            "threaded" | "threaded-sleep" | "sleep" => Some(IoBackendChoice::ThreadedSleep),
            _ => None,
        }
    }

    /// The choice from [`IO_BACKEND_ENV`]. `Ok(None)` when unset;
    /// `Err` (with the offending value) when set to something
    /// unparsable — a typo in a CI matrix must not silently test the
    /// default backend.
    pub fn from_env() -> Result<Option<IoBackendChoice>, String> {
        match std::env::var(IO_BACKEND_ENV) {
            Ok(v) => IoBackendChoice::parse(&v).map(Some).ok_or(v),
            Err(_) => Ok(None),
        }
    }

    /// Canonical spelling, round-trips through [`IoBackendChoice::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoBackendChoice::Auto => "auto",
            IoBackendChoice::Epoll => "epoll",
            IoBackendChoice::Poll => "poll",
            IoBackendChoice::ThreadedSleep => "threaded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_backend_choice_parses_and_round_trips() {
        for c in [
            IoBackendChoice::Auto,
            IoBackendChoice::Epoll,
            IoBackendChoice::Poll,
            IoBackendChoice::ThreadedSleep,
        ] {
            assert_eq!(IoBackendChoice::parse(c.name()), Some(c));
        }
        assert_eq!(
            IoBackendChoice::parse("Threaded-Sleep"),
            Some(IoBackendChoice::ThreadedSleep)
        );
        assert_eq!(IoBackendChoice::parse("uring"), None);
    }

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.data_page_size >= 1024);
        assert!(c.index_fill_factor > 0.5 && c.index_fill_factor <= 1.0);
        assert!(c.merge_fan_in >= 2);
    }

    #[test]
    fn small_config_forces_splits() {
        let c = EngineConfig::small();
        assert!(c.index_page_size <= 512);
        assert!(c.sort_workspace_keys <= 64);
    }
}
