//! Shared foundation types for the online-index-build engine.
//!
//! This crate holds everything the other crates agree on: typed
//! identifiers ([`ids`]), order-preserving key encoding ([`key`]), the
//! error type ([`error`]), deterministic crash injection
//! ([`failpoint`]), lightweight atomic counters ([`stats`]), engine
//! configuration ([`config`]) and the read-side API surface shared by
//! sessions, wire clients and follower reads ([`api`]).
//!
//! The vocabulary follows Mohan & Narang (SIGMOD 1992): records live on
//! *data pages* and are addressed by a [`ids::Rid`]; index entries are
//! `<key value, RID>` pairs ([`key::IndexEntry`]); recovery is
//! ARIES-style write-ahead logging addressed by [`ids::Lsn`]s.

#![warn(missing_docs)]

pub mod api;
pub mod config;
pub mod error;
pub mod failpoint;
pub mod ids;
pub mod key;
pub mod stats;

pub use api::ReadApi;
pub use config::{EngineConfig, IoBackendChoice};
pub use error::{Error, Result};
pub use ids::{FileId, IndexId, Lsn, PageId, Rid, SlotId, TableId, TxId};
pub use key::{IndexEntry, KeyValue};
