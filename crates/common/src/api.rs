//! The read-side API shared by every way of querying the engine.
//!
//! [`ReadApi`] is the narrow waist between read drivers (the bench
//! verify-oracle, closed-loop readers, experiments) and the three
//! places a read can be answered: an in-process `oib::Session`, a
//! primary over the wire (`client::Client`), or a replication
//! follower's bounded-staleness read path. Drivers written against the
//! trait run unchanged across all three, which is what lets E19
//! measure follower reads with the same oracle the loopback suites use
//! against the primary.
//!
//! The trait deliberately mirrors the wire protocol's `Read`/`Lookup`
//! shapes — records travel as `Vec<i64>` column values and index
//! probes return packed-able [`Rid`]s — so implementing it never
//! forces a representation conversion the wire would not already do.

use crate::ids::{IndexId, Rid, TableId};
use crate::key::KeyValue;

/// Point reads against any engine surface: a record fetch by RID and
/// an exact-match index probe.
///
/// Implementations may be stateful (a wire client owns a socket, a
/// session may observe its own uncommitted writes), hence `&mut self`.
/// Errors stay implementation-specific — an in-process session fails
/// with `Error`, a wire client with its transport error — but must be
/// printable so generic drivers can report them.
pub trait ReadApi {
    /// Implementation-specific failure type.
    type Err: std::fmt::Debug + std::fmt::Display;

    /// Fetch the record at `rid`, as column values.
    ///
    /// # Errors
    /// `NotFound` (however the implementation spells it) when the RID
    /// is unoccupied; follower implementations may also refuse with a
    /// staleness error when replication lag is over bound.
    fn read(&mut self, table: TableId, rid: Rid) -> Result<Vec<i64>, Self::Err>;

    /// Exact-match probe of index `index` for `key`, returning the
    /// RIDs of matching committed records.
    ///
    /// # Errors
    /// `NoSuchIndex` / `IndexNotReadable` for missing or still-building
    /// indexes; follower implementations may also refuse with a
    /// staleness error.
    fn lookup(&mut self, index: IndexId, key: &KeyValue) -> Result<Vec<Rid>, Self::Err>;
}
