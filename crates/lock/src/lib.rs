//! Transaction lock manager.
//!
//! The paper's execution model has transactions "do their usual
//! latching and locking" while the index builder acquires almost no
//! locks — that asymmetry is the whole point ("this execution model
//! permits very high concurrency and decreases CPU overhead", §1.1).
//! The lock manager provides what the algorithms need:
//!
//! * **S/X record locks** held to commit (strict two-phase locking) by
//!   ordinary transactions. With *data-only locking* (§6.2, ARIES/IM)
//!   a key lock and the lock on the record it came from are the same
//!   lock, so there is no separate key-lock namespace.
//! * **Table locks**: NSF's short quiesce acquires S on the table
//!   while update transactions hold IX (§2.2.1); dropping or
//!   cancelling an index build does the same (§2.3.2, footnote 6).
//! * **Conditional and instant requests**: garbage collection of
//!   pseudo-deleted keys asks for a *conditional instant* S lock — if
//!   it cannot be granted at once, the key's delete is probably
//!   uncommitted and the key is skipped (§2.2.4).
//! * **Timeout-based deadlock resolution**: a request that waits
//!   longer than the configured timeout aborts with
//!   [`Error::LockTimeout`].

#![warn(missing_docs)]

use mohan_common::stats::Counter;
use mohan_common::{Error, Result, Rid, TableId, TxId};
use mohan_obs::{Histogram, TraceSink};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Lock modes. `IX` is the intent mode update transactions hold on a
/// table; it conflicts with `S` and `X` table locks but not with other
/// `IX` holders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Share.
    S,
    /// Exclusive.
    X,
    /// Intent-exclusive (table level only).
    IX,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        use LockMode::{IX, S};
        matches!((self, other), (S, S) | (IX, IX))
    }
}

/// Names of lockable resources.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockName {
    /// Whole-table lock (quiesce, drop-index, descriptor create).
    Table(TableId),
    /// Record lock; with data-only locking this also protects every
    /// key derived from the record.
    Record(TableId, Rid),
}

impl std::fmt::Display for LockName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockName::Table(t) => write!(f, "table({t})"),
            LockName::Record(t, r) => write!(f, "record({t},{r})"),
        }
    }
}

#[derive(Debug, Default)]
struct GrantState {
    /// `(holder, mode, count)` — count supports re-entrant requests.
    holders: Vec<(TxId, LockMode, u32)>,
    /// FIFO waiter tickets; new grants are blocked while strangers
    /// wait ahead, so a quiesce S request cannot starve under a
    /// stream of IX holders.
    waiters: Vec<u64>,
    next_ticket: u64,
}

impl GrantState {
    fn compatible_with_holders(&self, tx: TxId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|&(h, m, _)| h == tx || m.compatible(mode))
    }

    /// Immediate grantability for a newcomer: compatible with the
    /// holders AND nobody is queued ahead (unless the requester
    /// already holds the resource — re-entrant requests and upgrades
    /// never queue behind strangers).
    fn can_grant(&self, tx: TxId, mode: LockMode) -> bool {
        let already_holder = self.holders.iter().any(|&(h, _, _)| h == tx);
        self.compatible_with_holders(tx, mode) && (already_holder || self.waiters.is_empty())
    }

    /// Grantability for the waiter holding `ticket`: compatible with
    /// holders and first in the queue.
    fn can_grant_ticket(&self, tx: TxId, mode: LockMode, ticket: u64) -> bool {
        self.compatible_with_holders(tx, mode) && self.waiters.first() == Some(&ticket)
    }

    fn enqueue(&mut self) -> u64 {
        let t = self.next_ticket;
        self.next_ticket += 1;
        self.waiters.push(t);
        t
    }

    fn dequeue(&mut self, ticket: u64) {
        self.waiters.retain(|&t| t != ticket);
    }

    fn grant(&mut self, tx: TxId, mode: LockMode) {
        // Upgrade in place if the tx already holds the resource in a
        // weaker or equal mode.
        if let Some(slot) = self.holders.iter_mut().find(|(h, _, _)| *h == tx) {
            if mode == LockMode::X {
                slot.1 = LockMode::X;
            }
            slot.2 += 1;
            return;
        }
        self.holders.push((tx, mode, 1));
    }

    fn release_once(&mut self, tx: TxId) -> bool {
        if let Some(i) = self.holders.iter().position(|(h, _, _)| *h == tx) {
            self.holders[i].2 -= 1;
            if self.holders[i].2 == 0 {
                self.holders.remove(i);
            }
            return true;
        }
        false
    }

    fn release_all_of(&mut self, tx: TxId) {
        self.holders.retain(|(h, _, _)| *h != tx);
    }
}

#[derive(Debug, Default)]
struct LockEntry {
    state: Mutex<GrantState>,
    cv: Condvar,
}

/// Lock-manager event counters (the paper's pathlength arguments count
/// lock calls saved, so we count them made).
#[derive(Debug, Default)]
pub struct LockStats {
    /// Lock calls (all kinds).
    pub calls: Counter,
    /// Calls that had to wait.
    pub waits: Counter,
    /// Waits that timed out (treated as deadlock).
    pub timeouts: Counter,
    /// Conditional requests denied immediately.
    pub conditional_denials: Counter,
    /// Time spent queued behind other holders, per wait (µs).
    /// `Arc` so an observability registry can adopt it.
    pub wait_us: Arc<Histogram>,
}

/// The lock manager.
pub struct LockManager {
    table: Mutex<HashMap<LockName, Arc<LockEntry>>>,
    held: Mutex<HashMap<TxId, Vec<LockName>>>,
    timeout: Duration,
    /// Trace ring for `lock.wait` spans — which trace waited, on what
    /// resource, for how long. Set once by the engine's observability
    /// registration; absent in bare unit tests.
    trace_sink: OnceLock<Arc<TraceSink>>,
    /// Event counters.
    pub stats: LockStats,
}

impl LockManager {
    /// Create a manager with the given wait timeout.
    #[must_use]
    pub fn new(timeout: Duration) -> LockManager {
        LockManager {
            table: Mutex::new(HashMap::new()),
            held: Mutex::new(HashMap::new()),
            timeout,
            trace_sink: OnceLock::new(),
            stats: LockStats::default(),
        }
    }

    /// Adopt the trace ring `lock.wait` spans record into. Set once at
    /// engine construction; later calls are ignored.
    pub fn set_trace_sink(&self, sink: Arc<TraceSink>) {
        let _ = self.trace_sink.set(sink);
    }

    /// Record a finished lock wait as a span of the current sampled
    /// trace (detail 1 = the wait timed out). Guarded on the context
    /// so untraced waits cost one thread-local read, and do not churn
    /// the bounded ring.
    fn trace_wait(&self, name: &LockName, started: Instant, timed_out: bool) {
        if mohan_obs::current_ctx().is_some_and(|c| c.sampled) {
            if let Some(sink) = self.trace_sink.get() {
                sink.span_event(
                    "lock.wait",
                    name.to_string(),
                    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                    u64::from(timed_out),
                );
            }
        }
    }

    fn entry(&self, name: &LockName) -> Arc<LockEntry> {
        Arc::clone(
            self.table
                .lock()
                .entry(name.clone())
                .or_insert_with(|| Arc::new(LockEntry::default())),
        )
    }

    fn note_held(&self, tx: TxId, name: &LockName) {
        self.held.lock().entry(tx).or_default().push(name.clone());
    }

    /// Acquire `name` in `mode`, waiting (FIFO) up to the configured
    /// timeout.
    pub fn lock(&self, tx: TxId, name: LockName, mode: LockMode) -> Result<()> {
        self.stats.calls.bump();
        let entry = self.entry(&name);
        let mut st = entry.state.lock();
        if !st.can_grant(tx, mode) {
            self.stats.waits.bump();
            let ticket = st.enqueue();
            let started = Instant::now();
            let deadline = started + self.timeout;
            while !st.can_grant_ticket(tx, mode, ticket) {
                if entry.cv.wait_until(&mut st, deadline).timed_out() {
                    st.dequeue(ticket);
                    entry.cv.notify_all();
                    self.stats.timeouts.bump();
                    self.stats.wait_us.record_micros(started.elapsed());
                    self.trace_wait(&name, started, true);
                    return Err(Error::LockTimeout {
                        tx,
                        name: name.to_string(),
                    });
                }
            }
            st.dequeue(ticket);
            entry.cv.notify_all();
            self.stats.wait_us.record_micros(started.elapsed());
            self.trace_wait(&name, started, false);
        }
        st.grant(tx, mode);
        drop(st);
        self.note_held(tx, &name);
        Ok(())
    }

    /// Conditional request: grant immediately or fail with
    /// [`Error::LockBusy`].
    pub fn try_lock(&self, tx: TxId, name: LockName, mode: LockMode) -> Result<()> {
        self.stats.calls.bump();
        let entry = self.entry(&name);
        let mut st = entry.state.lock();
        if !st.can_grant(tx, mode) {
            self.stats.conditional_denials.bump();
            return Err(Error::LockBusy);
        }
        st.grant(tx, mode);
        drop(st);
        self.note_held(tx, &name);
        Ok(())
    }

    /// Conditional *instant* request: test grantability without
    /// retaining the lock (the paper's "conditional instant share
    /// lock", §2.2.4).
    pub fn try_instant(&self, tx: TxId, name: LockName, mode: LockMode) -> Result<()> {
        self.stats.calls.bump();
        let entry = self.entry(&name);
        let st = entry.state.lock();
        if st.can_grant(tx, mode) {
            Ok(())
        } else {
            self.stats.conditional_denials.bump();
            Err(Error::LockBusy)
        }
    }

    /// Instant request with waiting: waits (FIFO) until grantable,
    /// then returns without retaining the lock. Used for "wait until
    /// that transaction finishes" checks (unique-violation
    /// arbitration).
    pub fn instant(&self, tx: TxId, name: LockName, mode: LockMode) -> Result<()> {
        self.stats.calls.bump();
        let entry = self.entry(&name);
        let mut st = entry.state.lock();
        if !st.can_grant(tx, mode) {
            self.stats.waits.bump();
            let ticket = st.enqueue();
            let started = Instant::now();
            let deadline = started + self.timeout;
            while !st.can_grant_ticket(tx, mode, ticket) {
                if entry.cv.wait_until(&mut st, deadline).timed_out() {
                    st.dequeue(ticket);
                    entry.cv.notify_all();
                    self.stats.timeouts.bump();
                    self.stats.wait_us.record_micros(started.elapsed());
                    self.trace_wait(&name, started, true);
                    return Err(Error::LockTimeout {
                        tx,
                        name: name.to_string(),
                    });
                }
            }
            st.dequeue(ticket);
            entry.cv.notify_all();
            self.stats.wait_us.record_micros(started.elapsed());
            self.trace_wait(&name, started, false);
        }
        Ok(())
    }

    /// Release one grant of `name` held by `tx` (short locks such as
    /// the NSF descriptor-create table lock).
    pub fn unlock(&self, tx: TxId, name: &LockName) {
        let entry = self.entry(name);
        let mut st = entry.state.lock();
        if st.release_once(tx) {
            entry.cv.notify_all();
        }
        drop(st);
        let mut held = self.held.lock();
        if let Some(v) = held.get_mut(&tx) {
            if let Some(i) = v.iter().position(|n| n == name) {
                v.remove(i);
            }
        }
    }

    /// Release everything `tx` holds (commit / abort / crash cleanup).
    pub fn release_all(&self, tx: TxId) {
        let names = self.held.lock().remove(&tx).unwrap_or_default();
        for name in names {
            let entry = self.entry(&name);
            let mut st = entry.state.lock();
            st.release_all_of(tx);
            entry.cv.notify_all();
        }
    }

    /// Drop every lock (crash simulation: the lock table is volatile).
    pub fn crash(&self) {
        self.table.lock().clear();
        self.held.lock().clear();
    }

    /// Modes in which `name` is currently held (diagnostics/tests).
    #[must_use]
    pub fn holders(&self, name: &LockName) -> Vec<(TxId, LockMode)> {
        let entry = self.entry(name);
        let st = entry.state.lock();
        st.holders.iter().map(|&(t, m, _)| (t, m)).collect()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("timeout", &self.timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn mgr() -> LockManager {
        LockManager::new(Duration::from_millis(100))
    }

    fn rec(n: u16) -> LockName {
        LockName::Record(TableId(1), Rid::new(1, n))
    }

    #[test]
    fn share_locks_coexist() {
        let m = mgr();
        m.lock(TxId(1), rec(1), LockMode::S).unwrap();
        m.lock(TxId(2), rec(1), LockMode::S).unwrap();
        assert_eq!(m.holders(&rec(1)).len(), 2);
    }

    #[test]
    fn exclusive_conflicts_and_times_out() {
        let m = mgr();
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        let err = m.lock(TxId(2), rec(1), LockMode::X).unwrap_err();
        assert!(matches!(err, Error::LockTimeout { tx: TxId(2), .. }));
        assert_eq!(m.stats.timeouts.get(), 1);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        m.lock(TxId(1), rec(1), LockMode::S).unwrap();
        m.lock(TxId(1), rec(1), LockMode::X).unwrap(); // sole holder: upgrade ok
        assert_eq!(m.holders(&rec(1)), vec![(TxId(1), LockMode::X)]);
        // Another tx now conflicts even on S.
        assert!(m.try_lock(TxId(2), rec(1), LockMode::S).is_err());
    }

    #[test]
    fn unlock_releases_one_grant() {
        let m = mgr();
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        m.unlock(TxId(1), &rec(1));
        // Still held once.
        assert!(m.try_lock(TxId(2), rec(1), LockMode::S).is_err());
        m.unlock(TxId(1), &rec(1));
        assert!(m.try_lock(TxId(2), rec(1), LockMode::S).is_ok());
    }

    #[test]
    fn release_all_unblocks_waiter() {
        let m = Arc::new(mgr());
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.lock(TxId(2), rec(1), LockMode::X));
        thread::sleep(Duration::from_millis(20));
        m.release_all(TxId(1));
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn conditional_instant_share_detects_uncommitted_delete() {
        let m = mgr();
        // Deleter still holds X: GC's conditional instant S is denied.
        m.lock(TxId(1), rec(7), LockMode::X).unwrap();
        assert_eq!(
            m.try_instant(TxId(9), rec(7), LockMode::S),
            Err(Error::LockBusy)
        );
        m.release_all(TxId(1));
        // Committed: grantable, and nothing is retained.
        m.try_instant(TxId(9), rec(7), LockMode::S).unwrap();
        assert!(m.holders(&rec(7)).is_empty());
    }

    #[test]
    fn table_quiesce_s_vs_ix() {
        let m = mgr();
        let t = LockName::Table(TableId(1));
        // Two updaters hold IX together.
        m.lock(TxId(1), t.clone(), LockMode::IX).unwrap();
        m.lock(TxId(2), t.clone(), LockMode::IX).unwrap();
        // IB's quiesce S must wait.
        assert!(m.try_lock(TxId(9), t.clone(), LockMode::S).is_err());
        m.release_all(TxId(1));
        m.release_all(TxId(2));
        m.lock(TxId(9), t.clone(), LockMode::S).unwrap();
        // New updater blocks until IB releases.
        assert!(m.try_lock(TxId(3), t.clone(), LockMode::IX).is_err());
        m.unlock(TxId(9), &t);
        assert!(m.try_lock(TxId(3), t, LockMode::IX).is_ok());
    }

    #[test]
    fn instant_waits_for_commit() {
        let m = Arc::new(mgr());
        m.lock(TxId(1), rec(3), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.instant(TxId(2), rec(3), LockMode::S));
        thread::sleep(Duration::from_millis(20));
        m.release_all(TxId(1));
        assert!(h.join().unwrap().is_ok());
        assert!(m.holders(&rec(3)).is_empty());
    }

    #[test]
    fn crash_clears_everything() {
        let m = mgr();
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        m.crash();
        assert!(m.try_lock(TxId(2), rec(1), LockMode::X).is_ok());
    }

    #[test]
    fn waits_under_sampled_ctx_record_lock_wait_spans() {
        let m = Arc::new(mgr());
        let sink = Arc::new(TraceSink::new(32));
        m.set_trace_sink(Arc::clone(&sink));
        m.lock(TxId(1), rec(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            let _g = mohan_obs::install_ctx(mohan_obs::TraceCtx {
                trace_id: 0x77,
                span_id: 0,
                sampled: true,
            });
            m2.lock(TxId(2), rec(1), LockMode::X)
        });
        thread::sleep(Duration::from_millis(20));
        m.release_all(TxId(1));
        h.join().unwrap().unwrap();
        let evs: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind == "lock.wait")
            .collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].trace_id, 0x77);
        assert_eq!(evs[0].detail, 0); // granted, not timed out
        assert!(evs[0].dur_us >= 10_000);
        assert!(evs[0].label.contains("record"));
        // A timeout wait tags detail 1.
        m.lock(TxId(3), rec(2), LockMode::X).unwrap();
        {
            let _g = mohan_obs::install_ctx(mohan_obs::TraceCtx {
                trace_id: 0x78,
                span_id: 0,
                sampled: true,
            });
            assert!(m.lock(TxId(4), rec(2), LockMode::X).is_err());
        }
        let timed: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind == "lock.wait" && e.trace_id == 0x78)
            .collect();
        assert_eq!(timed.len(), 1);
        assert_eq!(timed[0].detail, 1);
    }

    #[test]
    fn stress_many_txs_single_resource() {
        let m = Arc::new(LockManager::new(Duration::from_secs(5)));
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for t in 0..16u64 {
            let m = Arc::clone(&m);
            let c = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    m.lock(TxId(t), rec(0), LockMode::X).unwrap();
                    {
                        let mut g = c.lock();
                        *g += 1;
                    }
                    m.release_all(TxId(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 800);
    }
}
