//! Offline stand-in for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! replaces `rand` with this in-tree shim (see `[workspace.dependencies]`
//! in the root `Cargo.toml`). It provides deterministic, seedable
//! generators with the 0.9 method names (`random_range`,
//! `random_bool`) backed by SplitMix64 — statistically fine for test
//! data and workload generation, not for cryptography.

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (rand 0.9 names).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits -> [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Uniform sample using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // Width fits in u64 for every supported type, including
                // full-domain i64 ranges, via wrapping arithmetic.
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                let off = if width == 0 { rng.next_u64() } else { rng.next_u64() % width };
                (self.start as u64).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let off = if width == 0 { rng.next_u64() } else { rng.next_u64() % width };
                (start as u64).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush — good enough for
    /// deterministic test-data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the shim has only one generator.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher-Yates).
    pub trait SliceRandom {
        /// In-place uniform shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000i64), b.random_range(0..1000i64));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-50..50i64);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(3..=5u16);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn full_domain_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let v = rng.random_range(i64::MIN..i64::MAX);
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
