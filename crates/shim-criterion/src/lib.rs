//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! replaces `criterion` with this in-tree shim. It keeps the source
//! shape (`criterion_group!`, `criterion_main!`, `Criterion`,
//! benchmark groups, `iter`/`iter_batched`) and performs a simple but
//! honest measurement: per sample, iteration counts are auto-scaled to
//! a minimum wall-time, and the median/min/max per-iteration times are
//! printed. No plotting, no statistics beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (prevents the optimizer from deleting the
/// benchmarked computation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup. The shim runs setup once per
/// measured batch regardless, so this is shape-compatibility only.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted, not currently rendered).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    min_sample_time: Duration,
}

impl Bencher<'_> {
    /// Measure `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Estimate a per-sample iteration count that reaches the
        // minimum sample time.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= self.min_sample_time || iters >= 1 << 20 {
                self.samples
                    .push(dt / u32::try_from(iters).unwrap_or(u32::MAX));
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let per_sample_iters = iters;
        for _ in 1..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..per_sample_iters {
                black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / u32::try_from(per_sample_iters).unwrap_or(u32::MAX));
        }
    }

    /// Measure `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let fmt = |d: Duration| -> String {
        let ns = d.as_nanos();
        if ns >= 1_000_000_000 {
            format!("{:.3} s", d.as_secs_f64())
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", d.as_secs_f64() * 1e3)
        } else if ns >= 1_000 {
            format!("{:.3} µs", d.as_secs_f64() * 1e6)
        } else {
            format!("{ns} ns")
        }
    };
    let median = samples[samples.len() / 2];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt(samples[0]),
        fmt(median),
        fmt(samples[samples.len() - 1]),
    );
}

/// The benchmark manager.
pub struct Criterion {
    sample_count: usize,
    min_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 11,
            min_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Accepted for source compatibility; the shim has no CLI.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_count);
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
            min_sample_time: self.min_sample_time,
        };
        f(&mut b);
        report(name, &mut samples);
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.max(3);
        self
    }

    /// Throughput annotation (accepted, not rendered).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, &mut f);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, &mut |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            sample_count: 3,
            min_sample_time: Duration::from_micros(50),
        };
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("batched", 1), &1u64, |b, &x| {
            b.iter_batched(
                || vec![x; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
