//! The engine's wire protocol: a dependency-free, length-prefixed
//! binary framing with typed request/response messages.
//!
//! The repo's north star is a system that serves client traffic, not a
//! library driven by in-process function calls — and the paper's
//! availability claims (§2.2.1, §3.2.1, §4: SF builds at zero quiesce,
//! NSF at a short descriptor quiesce) are only observable *as clients
//! experience them* if `CREATE INDEX` runs while DML arrives over a
//! connection. This crate defines what travels on that connection:
//!
//! * [`frame`] — `[u32 BE length][payload]` framing with a hard size
//!   cap, blocking read/write helpers and an incremental splitter for
//!   non-blocking servers.
//! * [`message`] — [`message::Request`] / [`message::Response`] enums
//!   covering transactions (`Begin`/`Commit`/`Rollback`), DML
//!   (`Insert`/`Update`/`Delete`/`Read`/`Lookup`), online index builds
//!   (`CreateIndex` answered by a stream of
//!   [`message::Response::Progress`] frames, then
//!   [`message::Response::IndexCreated`]), server stats, and
//!   structured errors ([`message::ErrorCode`] mapped from
//!   [`mohan_common::Error`]).
//! * [`codec`] — the big-endian primitive encoding shared by both.
//!
//! Everything encodes to explicit bytes (no `serde`, no derive
//! macros): the container has no crates.io access, and an explicit
//! codec keeps the protocol's compatibility surface auditable.

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod message;

pub use frame::{read_frame, take_frame, write_frame, FrameError, MAX_FRAME};
pub use message::{
    encode_traced, error_code_of, peel_traced, proto_major, proto_version, BuildAlgo, BuildPhase,
    ErrorCode, IndexSpecWire, Request, Response, Role, PROTO_MAJOR, PROTO_MINOR, REQ_TRACED,
};
