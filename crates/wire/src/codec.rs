//! Big-endian primitive codec shared by the frame and message layers.
//!
//! The engine already stores everything big-endian (page headers, WAL
//! records, [`mohan_common::key::KeyValue`] order-preserving keys), so
//! the wire uses the same convention. Encoding appends to a `Vec<u8>`;
//! decoding walks a [`Cursor`] and returns `None` on truncation, the
//! same contract as `IndexEntry::decode` — callers translate `None`
//! into a protocol-level `Malformed` error.

/// Bounds-checked reader over a received payload.
///
/// Every `get_*` advances the cursor and returns `None` if fewer bytes
/// remain than the value needs; decoding a whole message succeeds only
/// if the cursor is exactly drained (see [`Cursor::finish`]).
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Read a big-endian `u16`.
    pub fn get_u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes([s[0], s[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Read a big-endian `i64` (two's complement).
    pub fn get_i64(&mut self) -> Option<i64> {
        self.get_u64().map(|v| v as i64)
    }

    /// Read a `u32`-length-prefixed byte string.
    ///
    /// The length is validated against the bytes actually present, so a
    /// forged huge length fails fast instead of allocating.
    pub fn get_bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.get_u32()? as usize;
        self.take(len).map(|s| s.to_vec())
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Option<String> {
        String::from_utf8(self.get_bytes()?).ok()
    }

    /// Succeed only if the payload was consumed exactly — trailing
    /// garbage is as malformed as truncation.
    pub fn finish<T>(self, value: T) -> Option<T> {
        if self.remaining() == 0 {
            Some(value)
        } else {
            None
        }
    }
}

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a big-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `i64` (two's complement).
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

/// Append a `u32`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Append a `u32`-length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xab);
        put_u16(&mut buf, 0xbeef);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 7);
        put_i64(&mut buf, -42);
        put_bytes(&mut buf, b"key");
        put_string(&mut buf, "naïve");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_u8(), Some(0xab));
        assert_eq!(c.get_u16(), Some(0xbeef));
        assert_eq!(c.get_u32(), Some(0xdead_beef));
        assert_eq!(c.get_u64(), Some(u64::MAX - 7));
        assert_eq!(c.get_i64(), Some(-42));
        assert_eq!(c.get_bytes().as_deref(), Some(&b"key"[..]));
        assert_eq!(c.get_string().as_deref(), Some("naïve"));
        assert_eq!(c.finish(()), Some(()));
    }

    #[test]
    fn truncation_returns_none() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 1);
        for cut in 0..8 {
            let mut c = Cursor::new(&buf[..cut]);
            assert_eq!(c.get_u64(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 GiB follow
        buf.extend_from_slice(b"xy");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_bytes(), None);
    }

    #[test]
    fn trailing_garbage_fails_finish() {
        let buf = [1u8, 2, 3];
        let mut c = Cursor::new(&buf);
        c.get_u8().unwrap();
        assert_eq!(c.finish(()), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_string(), None);
    }
}
