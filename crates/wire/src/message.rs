//! Typed request/response messages and their byte encodings.
//!
//! A payload is one tag byte followed by a tag-specific body. Decoding
//! is strict: unknown tags, truncated bodies and trailing bytes all
//! return `None`, which the peer reports as [`ErrorCode::Malformed`].
//!
//! The crate deliberately depends only on `mohan-common`: records
//! travel as `Vec<i64>` column values (the engine's `Record` is a
//! newtype over exactly that), RIDs as their packed `u64` form, and
//! index keys as the order-preserving `KeyValue` bytes — so the
//! protocol can be spoken without linking the engine.

use crate::codec::{put_bytes, put_i64, put_string, put_u16, put_u32, put_u64, put_u8, Cursor};
use mohan_common::error::Error;

/// Protocol major version. A server rejects a [`Request::Hello`]
/// whose major differs from its own — majors gate incompatible
/// changes. Minor bumps are additive and interoperate.
pub const PROTO_MAJOR: u16 = 1;
/// Protocol minor version (additive changes only).
///
/// History: 1 added causal tracing — the [`REQ_TRACED`] request
/// envelope, filter arguments on [`Request::TraceDump`] (a bodyless
/// dump still decodes, as minor 0 sent it), and per-record trace tags
/// on [`Response::WalFrame`] (a frame without the trailing tag list
/// still decodes, as minor 0 cut it).
///
/// 2 added [`ErrorCode::SubscriptionLagged`] — the structured
/// cut-loose a `SubscribeWal` stream receives when its cursor falls
/// behind the broadcast ring's retained window. Older clients decode
/// it as a malformed error code and treat the disconnect as a plain
/// stream error, which still lands them in reconnect-catch-up.
///
/// 3 added [`Request::CreateIndexV2`] — `CreateIndex` carrying a
/// [`BuildOptionsWire`] (parallel workers, run compression, drain
/// policy, checkpoint interval) — and [`ErrorCode::InvalidArg`] for
/// statement-level argument rejection. The tag-10 `CreateIndex`
/// encoding is unchanged and still decodes; a client that never sends
/// options keeps using it.
pub const PROTO_MINOR: u16 = 3;

/// This build's packed protocol version (`major << 16 | minor`).
#[must_use]
pub fn proto_version() -> u32 {
    (u32::from(PROTO_MAJOR) << 16) | u32::from(PROTO_MINOR)
}

/// Major component of a packed protocol version.
#[must_use]
pub fn proto_major(version: u32) -> u16 {
    (version >> 16) as u16
}

/// What a peer is, announced in [`Request::Hello`] and answered in
/// [`Response::Welcome`]. A server is `Primary` or `Replica`; a
/// connecting peer is usually `Client`, or `Replica` when the
/// connection is a follower's WAL subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// An engine that accepts writes.
    Primary,
    /// A replication follower: serves bounded-staleness reads, refuses
    /// writes with [`ErrorCode::NotWritable`] until promoted.
    Replica,
    /// An ordinary client.
    Client,
}

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::Primary => 0,
            Role::Replica => 1,
            Role::Client => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Role::Primary),
            1 => Some(Role::Replica),
            2 => Some(Role::Client),
            _ => None,
        }
    }
}

/// Build algorithm selector carried by `CreateIndex` (§1: offline
/// baseline, §2 NSF, §3 SF).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildAlgo {
    /// Quiesced baseline build.
    Offline,
    /// No-side-file online build (§2).
    Nsf,
    /// Side-file online build (§3).
    Sf,
}

impl BuildAlgo {
    fn tag(self) -> u8 {
        match self {
            BuildAlgo::Offline => 0,
            BuildAlgo::Nsf => 1,
            BuildAlgo::Sf => 2,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(BuildAlgo::Offline),
            1 => Some(BuildAlgo::Nsf),
            2 => Some(BuildAlgo::Sf),
            _ => None,
        }
    }
}

/// Index definition as carried on the wire (mirrors `oib::IndexSpec`
/// without depending on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpecWire {
    /// Human-readable index name.
    pub name: String,
    /// Column positions forming the key, in order.
    pub key_cols: Vec<u16>,
    /// Enforce unique committed key values (§2.2.3).
    pub unique: bool,
}

impl IndexSpecWire {
    fn encode(&self, out: &mut Vec<u8>) {
        put_string(out, &self.name);
        let n = self.key_cols.len().min(MAX_LIST);
        put_u16(out, n as u16);
        for &c in &self.key_cols[..n] {
            put_u16(out, c);
        }
        put_u8(out, u8::from(self.unique));
    }

    fn decode(c: &mut Cursor<'_>) -> Option<Self> {
        let name = c.get_string()?;
        let n = c.get_u16()? as usize;
        let mut key_cols = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            key_cols.push(c.get_u16()?);
        }
        let unique = match c.get_u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        Some(IndexSpecWire {
            name,
            key_cols,
            unique,
        })
    }
}

/// Build tuning options as carried on the wire (mirrors
/// `oib::BuildOptions` without depending on it). The body is fixed
/// width: `[u16 workers][u8 flags][u32 checkpoint_every]`, where flag
/// bit 0 is `compress_runs`, bit 1 says a drain override is present
/// and bit 2 carries its value, and a zero `checkpoint_every` means
/// "engine default".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptionsWire {
    /// Scan/sort worker threads (0 is rejected engine-side; encode
    /// what the user asked for).
    pub parallel_workers: u16,
    /// Prefix-compress spilled sort runs.
    pub compress_runs: bool,
    /// Override the engine's sorted side-file drain default
    /// (`None` = use the server's configured default).
    pub sort_side_file_drain: Option<bool>,
    /// Override every build checkpoint interval, in keys
    /// (0 = use the server's configured defaults).
    pub checkpoint_every: u32,
}

impl Default for BuildOptionsWire {
    fn default() -> Self {
        BuildOptionsWire {
            parallel_workers: 1,
            compress_runs: false,
            sort_side_file_drain: None,
            checkpoint_every: 0,
        }
    }
}

impl BuildOptionsWire {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.parallel_workers);
        let mut flags = 0u8;
        if self.compress_runs {
            flags |= 1;
        }
        if let Some(v) = self.sort_side_file_drain {
            flags |= 2;
            if v {
                flags |= 4;
            }
        }
        put_u8(out, flags);
        put_u32(out, self.checkpoint_every);
    }

    fn decode(c: &mut Cursor<'_>) -> Option<Self> {
        let parallel_workers = c.get_u16()?;
        let flags = c.get_u8()?;
        if flags & !0b111 != 0 {
            return None;
        }
        Some(BuildOptionsWire {
            parallel_workers,
            compress_runs: flags & 1 != 0,
            sort_side_file_drain: if flags & 2 != 0 {
                Some(flags & 4 != 0)
            } else {
                None
            },
            checkpoint_every: c.get_u32()?,
        })
    }
}

/// Phase of an in-flight build, streamed in
/// [`Response::Progress`] frames. Mirrors `oib::BuildProgress`
/// checkpoints plus a `Starting` state emitted before the build thread
/// has stored its first checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPhase {
    /// Build accepted; no checkpoint stored yet.
    Starting,
    /// Scanning the table / feeding the external sort.
    Scanning,
    /// Reducing sorted runs (merge passes).
    Reducing,
    /// Bulk-loading the tree from the final merge.
    Loading,
    /// Inserting sorted keys one by one (non-bulk path).
    Inserting,
    /// Draining the side file (§3.2.5, SF only).
    Draining,
    /// Build finished; `IndexCreated` follows.
    Done,
}

impl BuildPhase {
    fn tag(self) -> u8 {
        match self {
            BuildPhase::Starting => 0,
            BuildPhase::Scanning => 1,
            BuildPhase::Reducing => 2,
            BuildPhase::Loading => 3,
            BuildPhase::Inserting => 4,
            BuildPhase::Draining => 5,
            BuildPhase::Done => 6,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(BuildPhase::Starting),
            1 => Some(BuildPhase::Scanning),
            2 => Some(BuildPhase::Reducing),
            3 => Some(BuildPhase::Loading),
            4 => Some(BuildPhase::Inserting),
            5 => Some(BuildPhase::Draining),
            6 => Some(BuildPhase::Done),
            _ => None,
        }
    }
}

/// Histogram summary as carried on the wire: the quantile extract of
/// one named distribution from the server's metrics registry (the full
/// bucket array stays server-side; summaries are what `oib-top` and
/// the E17 experiment consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummaryWire {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations (wrapping).
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummaryWire {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.count);
        put_u64(out, self.sum);
        put_u64(out, self.max);
        put_u64(out, self.p50);
        put_u64(out, self.p90);
        put_u64(out, self.p99);
    }

    fn decode(c: &mut Cursor<'_>) -> Option<Self> {
        Some(HistogramSummaryWire {
            count: c.get_u64()?,
            sum: c.get_u64()?,
            max: c.get_u64()?,
            p50: c.get_u64()?,
            p90: c.get_u64()?,
            p99: c.get_u64()?,
        })
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a client can ask the server to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / RTT probe.
    Ping,
    /// Open a transaction on this connection's session.
    Begin,
    /// Commit the session's open transaction.
    Commit,
    /// Roll back the session's open transaction.
    Rollback,
    /// Insert a record; auto-commits if no transaction is open.
    Insert {
        /// Target table.
        table: u32,
        /// Column values.
        cols: Vec<i64>,
    },
    /// Replace the record at `rid`.
    Update {
        /// Target table.
        table: u32,
        /// Packed RID (see `Rid::pack`).
        rid: u64,
        /// Replacement column values.
        cols: Vec<i64>,
    },
    /// Delete the record at `rid`.
    Delete {
        /// Target table.
        table: u32,
        /// Packed RID.
        rid: u64,
    },
    /// Read the record at `rid` (no transaction needed).
    Read {
        /// Target table.
        table: u32,
        /// Packed RID.
        rid: u64,
    },
    /// Exact-match probe of an index.
    Lookup {
        /// Target index.
        index: u32,
        /// Order-preserving key bytes (`KeyValue`).
        key: Vec<u8>,
    },
    /// Build one or more indexes online; the server streams
    /// [`Response::Progress`] frames, then [`Response::IndexCreated`].
    CreateIndex {
        /// Table to index.
        table: u32,
        /// Build algorithm.
        algo: BuildAlgo,
        /// Index definitions (multiple = §5 multi-index single scan).
        specs: Vec<IndexSpecWire>,
    },
    /// [`Request::CreateIndex`] plus build tuning options (minor 3).
    /// Same exchange: the server streams [`Response::Progress`]
    /// frames, then [`Response::IndexCreated`].
    CreateIndexV2 {
        /// Table to index.
        table: u32,
        /// Build algorithm.
        algo: BuildAlgo,
        /// Index definitions (multiple = §5 multi-index single scan).
        specs: Vec<IndexSpecWire>,
        /// Parallelism / compression / checkpoint tuning.
        options: BuildOptionsWire,
    },
    /// Snapshot of the server's counters.
    Stats,
    /// Full metrics snapshot: engine + server counters/gauges and
    /// histogram summaries, sorted by name.
    Metrics,
    /// Subscribe this connection to periodic [`Response::Metrics`]
    /// frames until it disconnects. The stream occupies the
    /// connection (like `CreateIndex`); other requests on it are
    /// serviced after disconnect only.
    ObserveStats {
        /// Emission interval in milliseconds (server clamps to its
        /// supported range).
        interval_ms: u32,
    },
    /// Subscribe this connection to the primary's WAL stream,
    /// starting at `from_lsn`. The connection becomes a tail-following
    /// subscription (same occupancy semantics as `ObserveStats`)
    /// carrying [`Response::WalFrame`]s that cover only the *flushed*
    /// prefix of the log. Valid starts are `1 ..= flushed + 1`;
    /// anything else is answered with an error, since those records
    /// either never existed or could still be discarded by a crash.
    SubscribeWal {
        /// First LSN the subscriber wants (1-based; `applied + 1` on
        /// reconnect).
        from_lsn: u64,
    },
    /// Versioned handshake. Optional and backward-compatible: a peer
    /// that never sends it gets the legacy behaviour. The server
    /// answers [`Response::Welcome`] when the major versions agree and
    /// [`ErrorCode::UnsupportedProto`] otherwise.
    Hello {
        /// The peer's packed protocol version (see [`proto_version`]).
        proto_version: u32,
        /// What the peer is (informational; traced server-side).
        role: Role,
    },
    /// Promote a replica server to primary: stop its WAL subscription,
    /// roll back any in-flight replicated tail via restart undo, and
    /// open the engine for writes. Only meaningful on a replica's own
    /// socket; a primary answers with an error.
    Promote,
    /// Dump the server's span trace ring as JSON lines (one span per
    /// line, newest last). Diagnostic; the ring is bounded, so the
    /// reply is too.
    TraceDump {
        /// Only events of this trace (0 = every trace) — the bound
        /// that keeps dumps from a busy server readable.
        trace_id: u64,
        /// Only events with sequence number ≥ this (0 = from the
        /// oldest retained), so pollers can fetch increments.
        since_seq: u64,
    },
}

const REQ_PING: u8 = 1;
const REQ_BEGIN: u8 = 2;
const REQ_COMMIT: u8 = 3;
const REQ_ROLLBACK: u8 = 4;
const REQ_INSERT: u8 = 5;
const REQ_UPDATE: u8 = 6;
const REQ_DELETE: u8 = 7;
const REQ_READ: u8 = 8;
const REQ_LOOKUP: u8 = 9;
const REQ_CREATE_INDEX: u8 = 10;
const REQ_STATS: u8 = 11;
const REQ_METRICS: u8 = 12;
const REQ_OBSERVE_STATS: u8 = 13;
const REQ_SUBSCRIBE_WAL: u8 = 14;
const REQ_HELLO: u8 = 15;
const REQ_PROMOTE: u8 = 16;
const REQ_TRACE_DUMP: u8 = 17;
/// Tag of the trace envelope: `[REQ_TRACED][u64 trace id][inner
/// request payload]`. Deliberately *not* a [`Request`] variant — the
/// envelope is transport dressing peeled by [`peel_traced`] before
/// decode, so the opcode table, executor classification and every
/// `match` over requests stay untouched by tracing.
pub const REQ_TRACED: u8 = 18;
const REQ_CREATE_INDEX_V2: u8 = 19;

/// Wrap an encoded request in the trace envelope, attributing it to
/// `trace_id`. The server installs the id as the request's trace
/// context (subject to its sampling rate); a zero id makes the server
/// mint one, same as sending the request bare.
#[must_use]
pub fn encode_traced(trace_id: u64, req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    put_u8(&mut out, REQ_TRACED);
    put_u64(&mut out, trace_id);
    out.extend_from_slice(&req.encode());
    out
}

/// Split a request payload into its optional client-supplied trace id
/// and the inner payload. Non-enveloped payloads pass through as
/// `(None, payload)`; a too-short envelope passes through unchanged
/// and fails request decode as malformed.
#[must_use]
pub fn peel_traced(payload: &[u8]) -> (Option<u64>, &[u8]) {
    if payload.first() == Some(&REQ_TRACED) && payload.len() >= 9 {
        let mut id = [0u8; 8];
        id.copy_from_slice(&payload[1..9]);
        (Some(u64::from_be_bytes(id)), &payload[9..])
    } else {
        (None, payload)
    }
}

/// Explicit protocol cap on every `u16`-counted list (columns, index
/// specs, key columns, created ids, stat counters). Encoders clamp to
/// it — count and emitted elements always agree — instead of letting
/// `as u16` wrap the count and produce a frame the peer rejects as
/// malformed (trailing bytes). Real lists are orders of magnitude
/// smaller; the clamp is a wire-format invariant, not a working limit.
pub const MAX_LIST: usize = u16::MAX as usize;

/// Most RIDs one [`Response::Rids`] can carry and still fit
/// [`crate::frame::MAX_FRAME`] (tag + u32 count + 8 bytes per RID).
pub const MAX_RIDS: usize = (crate::frame::MAX_FRAME - 8) / 8;

fn put_cols(out: &mut Vec<u8>, cols: &[i64]) {
    let n = cols.len().min(MAX_LIST);
    put_u16(out, n as u16);
    for &v in &cols[..n] {
        put_i64(out, v);
    }
}

fn get_cols(c: &mut Cursor<'_>) -> Option<Vec<i64>> {
    let n = c.get_u16()? as usize;
    let mut cols = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        cols.push(c.get_i64()?);
    }
    Some(cols)
}

impl Request {
    /// Stable opcode name, e.g. for per-opcode latency metrics
    /// (`server.req_us.<opcode>`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::Begin => "Begin",
            Request::Commit => "Commit",
            Request::Rollback => "Rollback",
            Request::Insert { .. } => "Insert",
            Request::Update { .. } => "Update",
            Request::Delete { .. } => "Delete",
            Request::Read { .. } => "Read",
            Request::Lookup { .. } => "Lookup",
            Request::CreateIndex { .. } => "CreateIndex",
            Request::CreateIndexV2 { .. } => "CreateIndexV2",
            Request::Stats => "Stats",
            Request::Metrics => "Metrics",
            Request::ObserveStats { .. } => "ObserveStats",
            Request::SubscribeWal { .. } => "SubscribeWal",
            Request::Hello { .. } => "Hello",
            Request::Promote => "Promote",
            Request::TraceDump { .. } => "TraceDump",
        }
    }

    /// Encode to a frame payload (tag + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => put_u8(&mut out, REQ_PING),
            Request::Begin => put_u8(&mut out, REQ_BEGIN),
            Request::Commit => put_u8(&mut out, REQ_COMMIT),
            Request::Rollback => put_u8(&mut out, REQ_ROLLBACK),
            Request::Insert { table, cols } => {
                put_u8(&mut out, REQ_INSERT);
                put_u32(&mut out, *table);
                put_cols(&mut out, cols);
            }
            Request::Update { table, rid, cols } => {
                put_u8(&mut out, REQ_UPDATE);
                put_u32(&mut out, *table);
                put_u64(&mut out, *rid);
                put_cols(&mut out, cols);
            }
            Request::Delete { table, rid } => {
                put_u8(&mut out, REQ_DELETE);
                put_u32(&mut out, *table);
                put_u64(&mut out, *rid);
            }
            Request::Read { table, rid } => {
                put_u8(&mut out, REQ_READ);
                put_u32(&mut out, *table);
                put_u64(&mut out, *rid);
            }
            Request::Lookup { index, key } => {
                put_u8(&mut out, REQ_LOOKUP);
                put_u32(&mut out, *index);
                put_bytes(&mut out, key);
            }
            Request::CreateIndex { table, algo, specs } => {
                put_u8(&mut out, REQ_CREATE_INDEX);
                put_u32(&mut out, *table);
                put_u8(&mut out, algo.tag());
                let n = specs.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for s in &specs[..n] {
                    s.encode(&mut out);
                }
            }
            Request::CreateIndexV2 {
                table,
                algo,
                specs,
                options,
            } => {
                put_u8(&mut out, REQ_CREATE_INDEX_V2);
                put_u32(&mut out, *table);
                put_u8(&mut out, algo.tag());
                let n = specs.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for s in &specs[..n] {
                    s.encode(&mut out);
                }
                options.encode(&mut out);
            }
            Request::Stats => put_u8(&mut out, REQ_STATS),
            Request::Metrics => put_u8(&mut out, REQ_METRICS),
            Request::ObserveStats { interval_ms } => {
                put_u8(&mut out, REQ_OBSERVE_STATS);
                put_u32(&mut out, *interval_ms);
            }
            Request::SubscribeWal { from_lsn } => {
                put_u8(&mut out, REQ_SUBSCRIBE_WAL);
                put_u64(&mut out, *from_lsn);
            }
            Request::Hello {
                proto_version,
                role,
            } => {
                put_u8(&mut out, REQ_HELLO);
                put_u32(&mut out, *proto_version);
                put_u8(&mut out, role.tag());
            }
            Request::Promote => put_u8(&mut out, REQ_PROMOTE),
            Request::TraceDump {
                trace_id,
                since_seq,
            } => {
                put_u8(&mut out, REQ_TRACE_DUMP);
                put_u64(&mut out, *trace_id);
                put_u64(&mut out, *since_seq);
            }
        }
        out
    }

    /// Decode from a frame payload. `None` means malformed.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.get_u8()? {
            REQ_PING => Request::Ping,
            REQ_BEGIN => Request::Begin,
            REQ_COMMIT => Request::Commit,
            REQ_ROLLBACK => Request::Rollback,
            REQ_INSERT => Request::Insert {
                table: c.get_u32()?,
                cols: get_cols(&mut c)?,
            },
            REQ_UPDATE => Request::Update {
                table: c.get_u32()?,
                rid: c.get_u64()?,
                cols: get_cols(&mut c)?,
            },
            REQ_DELETE => Request::Delete {
                table: c.get_u32()?,
                rid: c.get_u64()?,
            },
            REQ_READ => Request::Read {
                table: c.get_u32()?,
                rid: c.get_u64()?,
            },
            REQ_LOOKUP => Request::Lookup {
                index: c.get_u32()?,
                key: c.get_bytes()?,
            },
            REQ_CREATE_INDEX => {
                let table = c.get_u32()?;
                let algo = BuildAlgo::from_tag(c.get_u8()?)?;
                let n = c.get_u16()? as usize;
                let mut specs = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    specs.push(IndexSpecWire::decode(&mut c)?);
                }
                Request::CreateIndex { table, algo, specs }
            }
            REQ_CREATE_INDEX_V2 => {
                let table = c.get_u32()?;
                let algo = BuildAlgo::from_tag(c.get_u8()?)?;
                let n = c.get_u16()? as usize;
                let mut specs = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    specs.push(IndexSpecWire::decode(&mut c)?);
                }
                let options = BuildOptionsWire::decode(&mut c)?;
                Request::CreateIndexV2 {
                    table,
                    algo,
                    specs,
                    options,
                }
            }
            REQ_STATS => Request::Stats,
            REQ_METRICS => Request::Metrics,
            REQ_OBSERVE_STATS => Request::ObserveStats {
                interval_ms: c.get_u32()?,
            },
            REQ_SUBSCRIBE_WAL => Request::SubscribeWal {
                from_lsn: c.get_u64()?,
            },
            REQ_HELLO => Request::Hello {
                proto_version: c.get_u32()?,
                role: Role::from_tag(c.get_u8()?)?,
            },
            REQ_PROMOTE => Request::Promote,
            // A bodyless dump is the minor-0 encoding: everything,
            // from the oldest retained event.
            REQ_TRACE_DUMP if c.remaining() == 0 => Request::TraceDump {
                trace_id: 0,
                since_seq: 0,
            },
            REQ_TRACE_DUMP => Request::TraceDump {
                trace_id: c.get_u64()?,
                since_seq: c.get_u64()?,
            },
            _ => return None,
        };
        c.finish(req)
    }

    /// Can the operation this encoded frame names block on engine
    /// locks? Decided from the opcode byte alone so an event loop can
    /// classify a frame without decoding it. Lock-acquiring work
    /// (DML, reads, index builds) must not run on a thread that also
    /// services `Commit`/`Rollback`: those release the very locks a
    /// waiter may be queued behind, so stalling them behind a lock
    /// wait deadlocks until the wait times out. Malformed frames are
    /// "cannot block" — their error reply is immediate. The
    /// [`REQ_TRACED`] envelope is looked through: classification
    /// follows the inner opcode.
    #[must_use]
    pub fn frame_may_block(payload: &[u8]) -> bool {
        let (_, inner) = peel_traced(payload);
        matches!(
            inner.first(),
            Some(
                &(REQ_INSERT
                    | REQ_UPDATE
                    | REQ_DELETE
                    | REQ_READ
                    | REQ_LOOKUP
                    | REQ_CREATE_INDEX
                    | REQ_CREATE_INDEX_V2
                    | REQ_PROMOTE),
            )
        )
    }
}

/// Structured error classes a [`Response::Err`] carries.
///
/// The first block mirrors [`mohan_common::error::Error`] one-to-one;
/// the second block is protocol/service-level conditions the engine
/// itself never raises. Two variants carry data a client is expected
/// to act on programmatically — the leader to redirect writes to, the
/// lag that made a read too stale — so the enum is `Clone`, not
/// `Copy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    /// [`Error::UniqueViolation`].
    UniqueViolation,
    /// [`Error::LockTimeout`].
    LockTimeout,
    /// [`Error::LockBusy`].
    LockBusy,
    /// [`Error::NotFound`].
    NotFound,
    /// [`Error::PageFull`].
    PageFull,
    /// [`Error::Corruption`].
    Corruption,
    /// [`Error::BuildCancelled`].
    BuildCancelled,
    /// [`Error::InjectedCrash`].
    InjectedCrash,
    /// [`Error::TxNotActive`].
    TxNotActive,
    /// [`Error::NoSuchIndex`].
    NoSuchIndex,
    /// [`Error::IndexNotReadable`].
    IndexNotReadable,
    /// [`Error::NoOpenTx`]: commit/rollback with no open transaction.
    NoOpenTx,
    /// [`Error::TxAlreadyOpen`]: `Begin` while one is already open.
    TxAlreadyOpen,
    /// [`Error::InvalidArg`]: a structurally invalid caller argument
    /// (empty spec list, zero worker count, unknown option).
    InvalidArg {
        /// What was wrong, for the human behind the statement.
        msg: String,
    },
    /// The request payload failed to decode.
    Malformed,
    /// The request missed its per-request deadline before execution.
    DeadlineExceeded,
    /// The server is draining and no longer accepts new work.
    Draining,
    /// Internal service failure not expressible as an engine error.
    Internal,
    /// The server is a replication follower and refuses writes.
    NotWritable {
        /// Where writes should go instead (the follower's primary
        /// address); empty when the follower does not know one.
        leader_hint: String,
    },
    /// A follower read was refused because replication lag exceeded
    /// the server's staleness bound (`max_lag_lsn`).
    Stale {
        /// The lag, in LSNs, at refusal time.
        lag: u64,
    },
    /// The peer's [`Request::Hello`] carried a protocol major version
    /// this server does not speak.
    UnsupportedProto,
    /// A `SubscribeWal` stream was cut loose: the subscriber's cursor
    /// fell behind the broadcast ring's retained window and the
    /// primary will not keep scanning the log privately for it. The
    /// follower should resubscribe from its applied LSN — the server
    /// serves fresh subscriptions below the window with bounded
    /// catch-up scans until they re-enter it.
    SubscriptionLagged {
        /// Oldest LSN still retained in the broadcast window when the
        /// stream was cut.
        retained_from: u64,
    },
}

impl ErrorCode {
    fn tag(&self) -> u8 {
        match self {
            ErrorCode::UniqueViolation => 1,
            ErrorCode::LockTimeout => 2,
            ErrorCode::LockBusy => 3,
            ErrorCode::NotFound => 4,
            ErrorCode::PageFull => 5,
            ErrorCode::Corruption => 6,
            ErrorCode::BuildCancelled => 7,
            ErrorCode::InjectedCrash => 8,
            ErrorCode::TxNotActive => 9,
            ErrorCode::NoSuchIndex => 10,
            ErrorCode::IndexNotReadable => 11,
            ErrorCode::NoOpenTx => 12,
            ErrorCode::TxAlreadyOpen => 13,
            ErrorCode::InvalidArg { .. } => 14,
            ErrorCode::Malformed => 32,
            ErrorCode::DeadlineExceeded => 33,
            ErrorCode::Draining => 34,
            ErrorCode::Internal => 35,
            ErrorCode::NotWritable { .. } => 36,
            ErrorCode::Stale { .. } => 37,
            ErrorCode::UnsupportedProto => 38,
            ErrorCode::SubscriptionLagged { .. } => 39,
        }
    }

    /// Tag byte plus the tag-specific body (only the data-carrying
    /// variants have one).
    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, self.tag());
        match self {
            ErrorCode::InvalidArg { msg } => put_string(out, msg),
            ErrorCode::NotWritable { leader_hint } => put_string(out, leader_hint),
            ErrorCode::Stale { lag } => put_u64(out, *lag),
            ErrorCode::SubscriptionLagged { retained_from } => put_u64(out, *retained_from),
            _ => {}
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Option<Self> {
        Some(match c.get_u8()? {
            1 => ErrorCode::UniqueViolation,
            2 => ErrorCode::LockTimeout,
            3 => ErrorCode::LockBusy,
            4 => ErrorCode::NotFound,
            5 => ErrorCode::PageFull,
            6 => ErrorCode::Corruption,
            7 => ErrorCode::BuildCancelled,
            8 => ErrorCode::InjectedCrash,
            9 => ErrorCode::TxNotActive,
            10 => ErrorCode::NoSuchIndex,
            11 => ErrorCode::IndexNotReadable,
            12 => ErrorCode::NoOpenTx,
            13 => ErrorCode::TxAlreadyOpen,
            14 => ErrorCode::InvalidArg {
                msg: c.get_string()?,
            },
            32 => ErrorCode::Malformed,
            33 => ErrorCode::DeadlineExceeded,
            34 => ErrorCode::Draining,
            35 => ErrorCode::Internal,
            36 => ErrorCode::NotWritable {
                leader_hint: c.get_string()?,
            },
            37 => ErrorCode::Stale { lag: c.get_u64()? },
            38 => ErrorCode::UnsupportedProto,
            39 => ErrorCode::SubscriptionLagged {
                retained_from: c.get_u64()?,
            },
            _ => return None,
        })
    }
}

/// Map an engine error to its wire code.
#[must_use]
pub fn error_code_of(e: &Error) -> ErrorCode {
    match e {
        Error::UniqueViolation { .. } => ErrorCode::UniqueViolation,
        Error::LockTimeout { .. } => ErrorCode::LockTimeout,
        Error::LockBusy => ErrorCode::LockBusy,
        Error::NotFound(_) => ErrorCode::NotFound,
        Error::PageFull => ErrorCode::PageFull,
        Error::Corruption(_) => ErrorCode::Corruption,
        Error::BuildCancelled => ErrorCode::BuildCancelled,
        Error::InjectedCrash(_) => ErrorCode::InjectedCrash,
        Error::TxNotActive(_) => ErrorCode::TxNotActive,
        Error::NoSuchIndex(_) => ErrorCode::NoSuchIndex,
        Error::IndexNotReadable(_) => ErrorCode::IndexNotReadable,
        Error::NoOpenTx => ErrorCode::NoOpenTx,
        Error::TxAlreadyOpen(_) => ErrorCode::TxAlreadyOpen,
        // The engine doesn't know its primary's address; the server
        // layer substitutes its configured `leader_hint`.
        Error::NotWritable => ErrorCode::NotWritable {
            leader_hint: String::new(),
        },
        Error::ReplicaStale { lag } => ErrorCode::Stale { lag: *lag },
        Error::InvalidArg(msg) => ErrorCode::InvalidArg { msg: msg.clone() },
    }
}

/// Everything the server can answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Transaction opened.
    TxBegun {
        /// Engine transaction id, for observability.
        tx: u64,
    },
    /// Transaction committed (WAL flushed to the commit LSN).
    Committed,
    /// Transaction rolled back.
    RolledBack,
    /// Record inserted.
    Inserted {
        /// Packed RID of the new record.
        rid: u64,
    },
    /// Record updated in place (or moved; same RID semantics as the
    /// engine's `update_record`).
    Updated,
    /// Record deleted.
    Deleted,
    /// Answer to [`Request::Read`].
    Record {
        /// Column values.
        cols: Vec<i64>,
    },
    /// Answer to [`Request::Lookup`].
    Rids {
        /// Packed RIDs of matching records.
        rids: Vec<u64>,
    },
    /// Build progress frame; zero or more precede `IndexCreated`.
    Progress {
        /// Index being built (0 until the id is known).
        index: u32,
        /// Current phase.
        phase: BuildPhase,
        /// Phase-specific progress figure (records scanned, keys
        /// inserted, side-file drain position, ...).
        detail: u64,
    },
    /// Build finished; terminal frame of a `CreateIndex` exchange.
    IndexCreated {
        /// Ids of the created indexes, in spec order.
        ids: Vec<u32>,
    },
    /// Counter snapshot, answer to [`Request::Stats`].
    Stats {
        /// `(name, value)` pairs, sorted by name.
        counters: Vec<(String, u64)>,
    },
    /// Metrics snapshot, answer to [`Request::Metrics`] and the
    /// periodic frame of an [`Request::ObserveStats`] stream.
    Metrics {
        /// `(name, value)` for every counter and gauge, sorted by
        /// name.
        counters: Vec<(String, u64)>,
        /// `(name, summary)` for every histogram, sorted by name.
        hists: Vec<(String, HistogramSummaryWire)>,
    },
    /// One batch of a [`Request::SubscribeWal`] stream: `count` log
    /// records in contiguous LSN order, encoded with
    /// `mohan_wal::codec` (opaque at this layer — the wire crate only
    /// depends on `mohan-common`). `records` may be empty: frames
    /// double as heartbeats carrying the primary's advancing flushed
    /// LSN, which is what the follower's lag gauge measures against.
    WalFrame {
        /// The primary's flushed LSN when the frame was cut; every
        /// carried record's LSN is ≤ this.
        flushed: u64,
        /// Number of records in `records`.
        count: u32,
        /// Concatenated record encodings.
        records: Vec<u8>,
        /// `(lsn, trace_id)` tags for carried records that were
        /// appended under a sampled trace — how one trace id follows
        /// a write across the subscription into the follower's apply
        /// path. Sparse: untagged records simply have no entry.
        traces: Vec<(u64, u64)>,
    },
    /// Admission control rejected the request; retry after backoff.
    Busy,
    /// The request failed; terminal frame for its exchange.
    Err {
        /// Structured class, for programmatic handling.
        code: ErrorCode,
        /// Human-readable detail (the engine error's `Display`).
        message: String,
    },
    /// Answer to an accepted [`Request::Hello`].
    Welcome {
        /// The server's packed protocol version.
        proto_version: u32,
        /// What the server is right now ([`Role::Primary`] or
        /// [`Role::Replica`]; promotion changes later answers).
        role: Role,
        /// The server's flushed WAL LSN at handshake time — a
        /// freshness reference point for follower reads.
        flushed_lsn: u64,
    },
    /// Answer to a successful [`Request::Promote`]: the replica is now
    /// a primary and accepts writes.
    Promoted {
        /// Highest LSN the replica had applied when promoted (its new
        /// flushed tail).
        last_lsn: u64,
        /// In-flight transactions rolled back by the restart-undo pass.
        losers_undone: u64,
    },
    /// Answer to [`Request::TraceDump`]: the span trace ring.
    TraceDump {
        /// JSON-lines dump, one completed span per line.
        jsonl: String,
    },
}

const RESP_PONG: u8 = 1;
const RESP_TX_BEGUN: u8 = 2;
const RESP_COMMITTED: u8 = 3;
const RESP_ROLLED_BACK: u8 = 4;
const RESP_INSERTED: u8 = 5;
const RESP_UPDATED: u8 = 6;
const RESP_DELETED: u8 = 7;
const RESP_RECORD: u8 = 8;
const RESP_RIDS: u8 = 9;
const RESP_PROGRESS: u8 = 10;
const RESP_INDEX_CREATED: u8 = 11;
const RESP_STATS: u8 = 12;
const RESP_BUSY: u8 = 13;
const RESP_ERR: u8 = 14;
const RESP_METRICS: u8 = 15;
const RESP_WAL_FRAME: u8 = 16;
const RESP_WELCOME: u8 = 17;
const RESP_PROMOTED: u8 = 18;
const RESP_TRACE_DUMP: u8 = 19;

impl Response {
    /// Encode to a frame payload (tag + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => put_u8(&mut out, RESP_PONG),
            Response::TxBegun { tx } => {
                put_u8(&mut out, RESP_TX_BEGUN);
                put_u64(&mut out, *tx);
            }
            Response::Committed => put_u8(&mut out, RESP_COMMITTED),
            Response::RolledBack => put_u8(&mut out, RESP_ROLLED_BACK),
            Response::Inserted { rid } => {
                put_u8(&mut out, RESP_INSERTED);
                put_u64(&mut out, *rid);
            }
            Response::Updated => put_u8(&mut out, RESP_UPDATED),
            Response::Deleted => put_u8(&mut out, RESP_DELETED),
            Response::Record { cols } => {
                put_u8(&mut out, RESP_RECORD);
                put_cols(&mut out, cols);
            }
            Response::Rids { rids } => {
                put_u8(&mut out, RESP_RIDS);
                let n = rids.len().min(MAX_RIDS);
                put_u32(&mut out, n as u32);
                for &r in &rids[..n] {
                    put_u64(&mut out, r);
                }
            }
            Response::Progress {
                index,
                phase,
                detail,
            } => {
                put_u8(&mut out, RESP_PROGRESS);
                put_u32(&mut out, *index);
                put_u8(&mut out, phase.tag());
                put_u64(&mut out, *detail);
            }
            Response::IndexCreated { ids } => {
                put_u8(&mut out, RESP_INDEX_CREATED);
                let n = ids.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for &id in &ids[..n] {
                    put_u32(&mut out, id);
                }
            }
            Response::Stats { counters } => {
                put_u8(&mut out, RESP_STATS);
                let n = counters.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for (name, value) in &counters[..n] {
                    put_string(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
            Response::Metrics { counters, hists } => {
                put_u8(&mut out, RESP_METRICS);
                let n = counters.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for (name, value) in &counters[..n] {
                    put_string(&mut out, name);
                    put_u64(&mut out, *value);
                }
                let n = hists.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for (name, h) in &hists[..n] {
                    put_string(&mut out, name);
                    h.encode(&mut out);
                }
            }
            Response::WalFrame {
                flushed,
                count,
                records,
                traces,
            } => {
                put_u8(&mut out, RESP_WAL_FRAME);
                put_u64(&mut out, *flushed);
                put_u32(&mut out, *count);
                put_bytes(&mut out, records);
                let n = traces.len().min(MAX_LIST);
                put_u16(&mut out, n as u16);
                for &(lsn, trace_id) in &traces[..n] {
                    put_u64(&mut out, lsn);
                    put_u64(&mut out, trace_id);
                }
            }
            Response::Busy => put_u8(&mut out, RESP_BUSY),
            Response::Err { code, message } => {
                put_u8(&mut out, RESP_ERR);
                code.encode(&mut out);
                put_string(&mut out, message);
            }
            Response::Welcome {
                proto_version,
                role,
                flushed_lsn,
            } => {
                put_u8(&mut out, RESP_WELCOME);
                put_u32(&mut out, *proto_version);
                put_u8(&mut out, role.tag());
                put_u64(&mut out, *flushed_lsn);
            }
            Response::Promoted {
                last_lsn,
                losers_undone,
            } => {
                put_u8(&mut out, RESP_PROMOTED);
                put_u64(&mut out, *last_lsn);
                put_u64(&mut out, *losers_undone);
            }
            Response::TraceDump { jsonl } => {
                put_u8(&mut out, RESP_TRACE_DUMP);
                put_string(&mut out, jsonl);
            }
        }
        out
    }

    /// Decode from a frame payload. `None` means malformed.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.get_u8()? {
            RESP_PONG => Response::Pong,
            RESP_TX_BEGUN => Response::TxBegun { tx: c.get_u64()? },
            RESP_COMMITTED => Response::Committed,
            RESP_ROLLED_BACK => Response::RolledBack,
            RESP_INSERTED => Response::Inserted { rid: c.get_u64()? },
            RESP_UPDATED => Response::Updated,
            RESP_DELETED => Response::Deleted,
            RESP_RECORD => Response::Record {
                cols: get_cols(&mut c)?,
            },
            RESP_RIDS => {
                let n = c.get_u32()? as usize;
                if n > crate::frame::MAX_FRAME / 8 {
                    return None;
                }
                let mut rids = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rids.push(c.get_u64()?);
                }
                Response::Rids { rids }
            }
            RESP_PROGRESS => Response::Progress {
                index: c.get_u32()?,
                phase: BuildPhase::from_tag(c.get_u8()?)?,
                detail: c.get_u64()?,
            },
            RESP_INDEX_CREATED => {
                let n = c.get_u16()? as usize;
                let mut ids = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    ids.push(c.get_u32()?);
                }
                Response::IndexCreated { ids }
            }
            RESP_STATS => {
                let n = c.get_u16()? as usize;
                let mut counters = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let name = c.get_string()?;
                    let value = c.get_u64()?;
                    counters.push((name, value));
                }
                Response::Stats { counters }
            }
            RESP_METRICS => {
                let n = c.get_u16()? as usize;
                let mut counters = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let name = c.get_string()?;
                    let value = c.get_u64()?;
                    counters.push((name, value));
                }
                let n = c.get_u16()? as usize;
                let mut hists = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    let name = c.get_string()?;
                    let h = HistogramSummaryWire::decode(&mut c)?;
                    hists.push((name, h));
                }
                Response::Metrics { counters, hists }
            }
            RESP_WAL_FRAME => {
                let flushed = c.get_u64()?;
                let count = c.get_u32()?;
                let records = c.get_bytes()?;
                // Minor-0 frames end here; minor-1 appends the tags.
                let mut traces = Vec::new();
                if c.remaining() > 0 {
                    let n = c.get_u16()? as usize;
                    traces.reserve(n.min(256));
                    for _ in 0..n {
                        traces.push((c.get_u64()?, c.get_u64()?));
                    }
                }
                Response::WalFrame {
                    flushed,
                    count,
                    records,
                    traces,
                }
            }
            RESP_BUSY => Response::Busy,
            RESP_ERR => Response::Err {
                code: ErrorCode::decode(&mut c)?,
                message: c.get_string()?,
            },
            RESP_WELCOME => Response::Welcome {
                proto_version: c.get_u32()?,
                role: Role::from_tag(c.get_u8()?)?,
                flushed_lsn: c.get_u64()?,
            },
            RESP_PROMOTED => Response::Promoted {
                last_lsn: c.get_u64()?,
                losers_undone: c.get_u64()?,
            },
            RESP_TRACE_DUMP => Response::TraceDump {
                jsonl: c.get_string()?,
            },
            _ => return None,
        };
        c.finish(resp)
    }

    /// Build the error response for an engine failure.
    #[must_use]
    pub fn from_error(e: &Error) -> Response {
        Response::Err {
            code: error_code_of(e),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mohan_common::ids::{IndexId, Rid, TxId};

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::Insert {
                table: 1,
                cols: vec![7, -9, i64::MIN, i64::MAX],
            },
            Request::Update {
                table: 1,
                rid: Rid::new(3, 4).pack(),
                cols: vec![],
            },
            Request::Delete {
                table: 2,
                rid: Rid::new(1, 1).pack(),
            },
            Request::Read { table: 2, rid: 99 },
            Request::Lookup {
                index: 5,
                key: mohan_common::key::KeyValue::from_i64(-1)
                    .as_bytes()
                    .to_vec(),
            },
            Request::CreateIndex {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![
                    IndexSpecWire {
                        name: "ix_k".into(),
                        key_cols: vec![0],
                        unique: true,
                    },
                    IndexSpecWire {
                        name: "ix_v".into(),
                        key_cols: vec![1, 0],
                        unique: false,
                    },
                ],
            },
            Request::CreateIndexV2 {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![IndexSpecWire {
                    name: "ix_k".into(),
                    key_cols: vec![0],
                    unique: true,
                }],
                options: BuildOptionsWire {
                    parallel_workers: 4,
                    compress_runs: true,
                    sort_side_file_drain: Some(false),
                    checkpoint_every: 10_000,
                },
            },
            Request::CreateIndexV2 {
                table: 2,
                algo: BuildAlgo::Nsf,
                specs: vec![IndexSpecWire {
                    name: "ix_v".into(),
                    key_cols: vec![1, 0],
                    unique: false,
                }],
                options: BuildOptionsWire::default(),
            },
            Request::Stats,
            Request::Metrics,
            Request::ObserveStats { interval_ms: 250 },
            Request::SubscribeWal { from_lsn: 1 },
            Request::SubscribeWal {
                from_lsn: u64::MAX - 1,
            },
            Request::Hello {
                proto_version: proto_version(),
                role: Role::Client,
            },
            Request::Hello {
                proto_version: (9 << 16) | 3,
                role: Role::Replica,
            },
            Request::Promote,
            Request::TraceDump {
                trace_id: 0,
                since_seq: 0,
            },
            Request::TraceDump {
                trace_id: 0xdead_beef_cafe_f00d,
                since_seq: 42,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::TxBegun { tx: 42 },
            Response::Committed,
            Response::RolledBack,
            Response::Inserted {
                rid: Rid::new(7, 2).pack(),
            },
            Response::Updated,
            Response::Deleted,
            Response::Record {
                cols: vec![1, 2, 3],
            },
            Response::Rids {
                rids: vec![0, u64::MAX, 17],
            },
            Response::Progress {
                index: 9,
                phase: BuildPhase::Draining,
                detail: 12345,
            },
            Response::IndexCreated { ids: vec![9, 10] },
            Response::Stats {
                counters: vec![("server.requests".into(), 7), ("server.busy".into(), 0)],
            },
            Response::Metrics {
                counters: vec![("cache.hit".into(), 901), ("cache.miss".into(), 33)],
                hists: vec![
                    (
                        "wal.flush_us".into(),
                        HistogramSummaryWire {
                            count: 120,
                            sum: 99_000,
                            max: 4_000,
                            p50: 700,
                            p90: 1_900,
                            p99: 3_800,
                        },
                    ),
                    (
                        "server.req_us.Insert".into(),
                        HistogramSummaryWire {
                            count: 0,
                            sum: 0,
                            max: 0,
                            p50: 0,
                            p90: 0,
                            p99: 0,
                        },
                    ),
                ],
            },
            Response::WalFrame {
                flushed: 512,
                count: 3,
                records: vec![0xAB, 0xCD, 0xEF, 0x01],
                traces: vec![(510, 0x1111_2222_3333_4444), (512, 0x5555_6666_7777_8888)],
            },
            Response::WalFrame {
                flushed: 512,
                count: 0,
                records: Vec::new(),
                traces: Vec::new(),
            },
            Response::Busy,
            Response::Err {
                code: ErrorCode::LockTimeout,
                message: "tx7 timed out".into(),
            },
            Response::Err {
                code: ErrorCode::NotWritable {
                    leader_hint: "127.0.0.1:4050".into(),
                },
                message: "replica refuses writes".into(),
            },
            Response::Err {
                code: ErrorCode::Stale { lag: 4096 },
                message: "lag over bound".into(),
            },
            Response::Err {
                code: ErrorCode::UnsupportedProto,
                message: "major 9 unsupported".into(),
            },
            Response::Err {
                code: ErrorCode::InvalidArg {
                    msg: "no index specs".into(),
                },
                message: "invalid argument: no index specs".into(),
            },
            Response::Err {
                code: ErrorCode::SubscriptionLagged {
                    retained_from: 88_001,
                },
                message: "cursor fell behind the broadcast window".into(),
            },
            Response::Welcome {
                proto_version: proto_version(),
                role: Role::Replica,
                flushed_lsn: 7_777,
            },
            Response::Promoted {
                last_lsn: 9_999,
                losers_undone: 3,
            },
            Response::TraceDump {
                jsonl: "{\"name\":\"server.drain\",\"us\":12}\n".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip_all_variants() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes), Some(req));
        }
    }

    #[test]
    fn response_roundtrip_all_variants() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes), Some(resp));
        }
    }

    /// Is the `cut`-byte prefix of `full` exactly a valid minor-0
    /// encoding that minor 1 deliberately still accepts? Two exist: a
    /// bodyless `TraceDump` (just the tag) and a `WalFrame` cut right
    /// before the appended trace-tag list.
    fn legacy_prefix_request(full: &Request, cut: usize) -> Option<Request> {
        match full {
            Request::TraceDump { .. } if cut == 1 => Some(Request::TraceDump {
                trace_id: 0,
                since_seq: 0,
            }),
            _ => None,
        }
    }

    fn legacy_prefix_response(full: &Response, cut: usize) -> Option<Response> {
        match full {
            Response::WalFrame {
                flushed,
                count,
                records,
                ..
            } if cut == 1 + 8 + 4 + 4 + records.len() => Some(Response::WalFrame {
                flushed: *flushed,
                count: *count,
                records: records.clone(),
                traces: Vec::new(),
            }),
            _ => None,
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        for req in sample_requests() {
            let bytes = req.encode();
            for cut in 0..bytes.len() {
                assert_eq!(
                    Request::decode(&bytes[..cut]),
                    legacy_prefix_request(&req, cut),
                    "{req:?} cut {cut}"
                );
            }
        }
        for resp in sample_responses() {
            let bytes = resp.encode();
            for cut in 0..bytes.len() {
                assert_eq!(
                    Response::decode(&bytes[..cut]),
                    legacy_prefix_response(&resp, cut),
                    "{resp:?} cut {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert_eq!(Request::decode(&bytes), None);
        let mut bytes = Response::Committed.encode();
        bytes.push(0);
        assert_eq!(Response::decode(&bytes), None);
    }

    #[test]
    fn overlong_list_clamps_instead_of_wrapping_count() {
        // `as u16` used to wrap the count to 3 while still emitting
        // every element, which the peer rejected as trailing bytes.
        let resp = Response::Record {
            cols: vec![7; MAX_LIST + 3],
        };
        match Response::decode(&resp.encode()).expect("frame stays well-formed") {
            Response::Record { cols } => {
                assert_eq!(cols.len(), MAX_LIST);
                assert!(cols.iter().all(|&v| v == 7));
            }
            other => panic!("expected Record, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(Request::decode(&[0xEE]), None);
        assert_eq!(Response::decode(&[0xEE]), None);
        assert_eq!(Request::decode(&[]), None);
    }

    #[test]
    fn frame_may_block_splits_acquirers_from_releasers() {
        let blocking = [
            Request::Insert {
                table: 1,
                cols: vec![1],
            },
            Request::Update {
                table: 1,
                rid: 0,
                cols: vec![1],
            },
            Request::Delete { table: 1, rid: 0 },
            Request::Read { table: 1, rid: 0 },
            Request::Lookup {
                index: 1,
                key: vec![0],
            },
            Request::CreateIndex {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![],
            },
            Request::CreateIndexV2 {
                table: 1,
                algo: BuildAlgo::Sf,
                specs: vec![],
                options: BuildOptionsWire::default(),
            },
            Request::Promote,
        ];
        for r in blocking {
            assert!(Request::frame_may_block(&r.encode()), "{r:?}");
        }
        let inline = [
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::Stats,
            Request::Metrics,
            Request::ObserveStats { interval_ms: 10 },
            Request::SubscribeWal { from_lsn: 0 },
            Request::Hello {
                proto_version: 1,
                role: Role::Primary,
            },
            Request::TraceDump {
                trace_id: 0,
                since_seq: 0,
            },
        ];
        for r in inline {
            assert!(!Request::frame_may_block(&r.encode()), "{r:?}");
        }
        // Malformed frames get an immediate error reply: inline.
        assert!(!Request::frame_may_block(&[]));
        assert!(!Request::frame_may_block(&[0xEE]));
        // The trace envelope is transparent to classification.
        let ins = Request::Insert {
            table: 1,
            cols: vec![1],
        };
        assert!(Request::frame_may_block(&encode_traced(7, &ins)));
        assert!(!Request::frame_may_block(&encode_traced(7, &Request::Ping)));
        // A truncated envelope is malformed, hence inline.
        assert!(!Request::frame_may_block(&[REQ_TRACED, 0, 0]));
    }

    #[test]
    fn trace_envelope_peels_and_inner_roundtrips() {
        let req = Request::CreateIndex {
            table: 3,
            algo: BuildAlgo::Sf,
            specs: vec![IndexSpecWire {
                name: "ix".into(),
                key_cols: vec![0],
                unique: false,
            }],
        };
        let framed = encode_traced(0xfeed_face_0123_4567, &req);
        let (id, inner) = peel_traced(&framed);
        assert_eq!(id, Some(0xfeed_face_0123_4567));
        assert_eq!(Request::decode(inner), Some(req.clone()));
        // Bare payloads pass through untouched.
        let bare = req.encode();
        let (id, inner) = peel_traced(&bare);
        assert_eq!(id, None);
        assert_eq!(inner, &bare[..]);
        // The envelope tag is not a decodable request on its own, and
        // a short envelope stays malformed after the peel.
        assert_eq!(Request::decode(&framed), None);
        let (id, inner) = peel_traced(&[REQ_TRACED, 1, 2]);
        assert_eq!(id, None);
        assert_eq!(Request::decode(inner), None);
        // An envelope around garbage: peeled id, inner still rejected.
        let mut bad = vec![REQ_TRACED];
        bad.extend_from_slice(&7u64.to_be_bytes());
        bad.push(0xEE);
        let (id, inner) = peel_traced(&bad);
        assert_eq!(id, Some(7));
        assert_eq!(Request::decode(inner), None);
    }

    #[test]
    fn error_code_mapping_covers_engine_errors() {
        let cases: Vec<(Error, ErrorCode)> = vec![
            (
                Error::UniqueViolation {
                    index: IndexId(1),
                    existing: Rid::new(1, 1),
                },
                ErrorCode::UniqueViolation,
            ),
            (
                Error::LockTimeout {
                    tx: TxId(1),
                    name: "rec".into(),
                },
                ErrorCode::LockTimeout,
            ),
            (Error::LockBusy, ErrorCode::LockBusy),
            (Error::NotFound("x".into()), ErrorCode::NotFound),
            (Error::PageFull, ErrorCode::PageFull),
            (Error::Corruption("c".into()), ErrorCode::Corruption),
            (Error::BuildCancelled, ErrorCode::BuildCancelled),
            (Error::InjectedCrash("site"), ErrorCode::InjectedCrash),
            (Error::TxNotActive(TxId(3)), ErrorCode::TxNotActive),
            (Error::NoSuchIndex(IndexId(4)), ErrorCode::NoSuchIndex),
            (
                Error::IndexNotReadable(IndexId(5)),
                ErrorCode::IndexNotReadable,
            ),
            (Error::NoOpenTx, ErrorCode::NoOpenTx),
            (Error::TxAlreadyOpen(TxId(9)), ErrorCode::TxAlreadyOpen),
            (
                Error::NotWritable,
                ErrorCode::NotWritable {
                    leader_hint: String::new(),
                },
            ),
            (
                Error::ReplicaStale { lag: 512 },
                ErrorCode::Stale { lag: 512 },
            ),
            (
                Error::InvalidArg("no index specs".into()),
                ErrorCode::InvalidArg {
                    msg: "no index specs".into(),
                },
            ),
        ];
        for (err, code) in cases {
            assert_eq!(error_code_of(&err), code, "{err:?}");
            // And the wire response carries the display text through.
            let resp = Response::from_error(&err);
            let decoded = Response::decode(&resp.encode()).unwrap();
            match decoded {
                Response::Err { code: c, message } => {
                    assert_eq!(c, code);
                    assert_eq!(message, err.to_string());
                }
                other => panic!("expected Err, got {other:?}"),
            }
        }
    }
}
