//! `[u32 BE length][payload]` framing.
//!
//! Two consumption styles share one format: [`read_frame`] blocks on an
//! `io::Read` (the client, tests), while [`take_frame`] incrementally
//! splits frames off a growing receive buffer (the server's
//! non-blocking connection loop). Both enforce [`MAX_FRAME`] so a
//! hostile or corrupted length prefix cannot make the peer allocate
//! gigabytes.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload (16 MiB).
///
/// Far above any legitimate message — the largest are `Stats` dumps and
/// multi-spec `CreateIndex` requests, both well under a page — but
/// small enough that a garbage length prefix fails instead of OOMing.
pub const MAX_FRAME: usize = 16 << 20;

/// Why a frame could not be produced from buffered bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer announced a payload larger than [`MAX_FRAME`]; the
    /// connection is unrecoverable because resynchronising on a byte
    /// stream with a corrupt length is impossible.
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame: length prefix then payload, single `write_all` per
/// part (callers wanting fewer syscalls wrap `w` in a `BufWriter`).
///
/// An oversized payload is refused (release builds included): the peer
/// would reject the frame anyway, but only after its receive stream is
/// unrecoverably desynchronised.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge(payload.len()).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Blocking read of one complete frame's payload.
///
/// `Ok(None)` means the peer closed cleanly at a frame boundary; EOF
/// mid-frame and an oversized length both surface as errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        mut n => {
            while n < 4 {
                let m = r.read(&mut len_buf[n..])?;
                if m == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame length",
                    ));
                }
                n += m;
            }
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Split one complete frame off the front of `buf`, if present.
///
/// Returns `Ok(None)` while the buffer holds only a partial frame; the
/// caller appends more received bytes and retries. On success the
/// consumed bytes are drained from `buf`, so leftover bytes of the
/// next frame stay in place.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[7u8; 300]).unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 300]);
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload").unwrap();
        for cut in 1..stream.len() {
            let mut r = &stream[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_frame_rejected_by_reader() {
        let stream = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = &stream[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn take_frame_handles_partial_and_back_to_back() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"one").unwrap();
        write_frame(&mut stream, b"two").unwrap();
        // Feed byte by byte: no frame until the first is complete.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for &b in &stream {
            buf.push(b);
            while let Some(p) = take_frame(&mut buf).unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(buf.is_empty());

        // Both at once: two calls split them in order.
        let mut buf = stream.clone();
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"one");
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"two");
        assert_eq!(take_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_payload_rejected_by_writer() {
        // Must hold in release builds too: a frame the peer cannot
        // accept should fail at the writer, not kill the connection.
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        let err = write_frame(&mut out, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.is_empty());
    }

    #[test]
    fn take_frame_rejects_oversized_length() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        assert_eq!(
            take_frame(&mut buf),
            Err(FrameError::TooLarge(MAX_FRAME + 1))
        );
    }
}
