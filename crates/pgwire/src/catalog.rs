//! The SQL name catalog: table names → engine [`TableId`]s + column
//! names.
//!
//! The engine itself is schemaless (a record is a vector of `i64`
//! columns keyed by position); SQL needs names. This catalog is the
//! thin naming layer on top: `CREATE TABLE` registers a name and its
//! column list, and tables created outside SQL (native wire, seeds)
//! are pre-registered as `t<ID>` with *positional* columns — `c0`,
//! `c1`, ... resolve by index, so `SELECT c0 FROM t1` works against a
//! natively seeded table with no declared schema.

use mohan_common::TableId;
use mohan_oib::Db;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// What the catalog knows about one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// The engine table this name maps to.
    pub id: TableId,
    /// Declared column names, in position order. Empty for tables
    /// created outside SQL — their columns resolve positionally as
    /// `c<N>`.
    pub cols: Vec<String>,
}

impl TableMeta {
    /// Resolve a column name to its record position.
    #[must_use]
    pub fn col_position(&self, name: &str) -> Option<usize> {
        if let Some(i) = self.cols.iter().position(|c| c == name) {
            return Some(i);
        }
        if self.cols.is_empty() {
            // Positional fallback for undeclared schemas: c0, c1, ...
            return name.strip_prefix('c').and_then(|n| n.parse().ok());
        }
        None
    }

    /// The display name of column `i`.
    #[must_use]
    pub fn col_name(&self, i: usize) -> String {
        self.cols.get(i).cloned().unwrap_or_else(|| format!("c{i}"))
    }
}

/// Shared, thread-safe name → table mapping.
pub struct Catalog {
    tables: Mutex<HashMap<String, Arc<TableMeta>>>,
    next_id: AtomicU32,
}

impl Catalog {
    /// Build a catalog over `db`, pre-registering every existing
    /// engine table as `t<ID>` so natively created tables are
    /// reachable from SQL.
    #[must_use]
    pub fn new(db: &Db) -> Catalog {
        let mut tables = HashMap::new();
        let mut max_id = 0u32;
        for id in db.table_ids() {
            max_id = max_id.max(id.0);
            tables.insert(
                format!("t{}", id.0),
                Arc::new(TableMeta {
                    id,
                    cols: Vec::new(),
                }),
            );
        }
        Catalog {
            tables: Mutex::new(tables),
            next_id: AtomicU32::new(max_id + 1),
        }
    }

    /// Look up a table by SQL name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<TableMeta>> {
        self.tables.lock().get(name).cloned()
    }

    /// Register a new table name with its columns, creating the heap
    /// table in the engine. `None` means the name is already taken.
    pub fn create(&self, name: &str, cols: Vec<String>, db: &Db) -> Option<TableId> {
        let mut tables = self.tables.lock();
        if tables.contains_key(name) {
            return None;
        }
        let id = TableId(self.next_id.fetch_add(1, Ordering::Relaxed));
        db.create_table(id);
        tables.insert(name.to_string(), Arc::new(TableMeta { id, cols }));
        // The engine id is now live; make it reachable by its
        // positional alias too, matching pre-registered tables.
        tables.entry(format!("t{}", id.0)).or_insert_with(|| {
            Arc::new(TableMeta {
                id,
                cols: Vec::new(),
            })
        });
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_columns_resolve() {
        let meta = TableMeta {
            id: TableId(1),
            cols: Vec::new(),
        };
        assert_eq!(meta.col_position("c0"), Some(0));
        assert_eq!(meta.col_position("c12"), Some(12));
        assert_eq!(meta.col_position("k"), None);
        assert_eq!(meta.col_name(1), "c1");
    }

    #[test]
    fn declared_columns_resolve_by_name_only() {
        let meta = TableMeta {
            id: TableId(1),
            cols: vec!["k".into(), "v".into()],
        };
        assert_eq!(meta.col_position("v"), Some(1));
        assert_eq!(meta.col_position("c0"), None);
        assert_eq!(meta.col_name(0), "k");
    }
}
