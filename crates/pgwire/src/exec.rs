//! Statement execution: parsed [`Statement`]s → engine calls through
//! [`Session`] → encoded backend messages.
//!
//! The executor appends `RowDescription`/`DataRow`/`CommandComplete`
//! bytes for everything it can finish synchronously. `CREATE INDEX`
//! is the exception: index builds are *online* and long-running, so
//! the executor validates and returns [`StmtOutcome::StartBuild`] —
//! the serving layer spawns the build thread and streams `NOTICE`
//! progress lines from the build-progress hook until
//! `CommandComplete("CREATE INDEX")`.
//!
//! `SELECT` picks its access path the way the paper frames index
//! utility: a point predicate on a column with a *complete* index is
//! a [`Session::lookup`]; a `BETWEEN` predicate is a key-range scan
//! through [`Session::lookup_range`]; everything else falls back to
//! the heap scan.

use crate::catalog::{Catalog, TableMeta};
use crate::proto;
use crate::sql::{Filter, SelectCols, Statement};
use mohan_common::{Error, IndexId, KeyValue, Rid, TableId};
use mohan_oib::build::{BuildOptions, IndexSpec};
use mohan_oib::schema::{BuildAlgorithm, Record};
use mohan_oib::{IndexState, Session};

/// A SQL-level failure: a SQLSTATE plus human-readable message,
/// rendered as an `ErrorResponse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgError {
    /// Five-character SQLSTATE code.
    pub sqlstate: &'static str,
    /// Message for the `M` field.
    pub message: String,
}

impl PgError {
    /// `42601` syntax error.
    #[must_use]
    pub fn syntax(msg: &str) -> PgError {
        PgError {
            sqlstate: "42601",
            message: format!("syntax error: {msg}"),
        }
    }

    /// `0A000` feature not supported.
    #[must_use]
    pub fn unsupported(msg: &str) -> PgError {
        PgError {
            sqlstate: "0A000",
            message: msg.to_string(),
        }
    }

    /// `42P01` undefined table.
    #[must_use]
    pub fn no_table(name: &str) -> PgError {
        PgError {
            sqlstate: "42P01",
            message: format!("relation \"{name}\" does not exist"),
        }
    }

    /// `42703` undefined column.
    #[must_use]
    pub fn no_column(name: &str) -> PgError {
        PgError {
            sqlstate: "42703",
            message: format!("column \"{name}\" does not exist"),
        }
    }

    /// Map an engine error onto its SQLSTATE.
    #[must_use]
    pub fn from_engine(e: &Error) -> PgError {
        PgError {
            sqlstate: sqlstate_of(e),
            message: e.to_string(),
        }
    }
}

/// The SQLSTATE an engine [`Error`] maps to on the Postgres wire.
#[must_use]
pub fn sqlstate_of(e: &Error) -> &'static str {
    match e {
        Error::UniqueViolation { .. } => "23505",
        Error::LockTimeout { .. } => "40P01", // deadlock_detected: timeout is our resolution
        Error::LockBusy => "55P03",           // lock_not_available
        Error::NotFound(_) => "42704",        // undefined_object
        Error::PageFull => "53100",           // disk_full (closest resource class)
        Error::Corruption(_) => "XX001",      // data_corrupted
        Error::BuildCancelled => "57014",     // query_canceled
        Error::InjectedCrash(_) => "XX000",   // internal_error
        Error::TxNotActive(_) => "25000",     // invalid_transaction_state
        Error::NoSuchIndex(_) => "42704",
        Error::IndexNotReadable(_) => "55000", // object_not_in_prerequisite_state
        Error::NoOpenTx => "25P01",            // no_active_sql_transaction
        Error::TxAlreadyOpen(_) => "25001",    // active_sql_transaction
        Error::NotWritable => "25006",         // read_only_sql_transaction
        Error::ReplicaStale { .. } => "72000", // snapshot_too_old
        Error::InvalidArg(_) => "22023",       // invalid_parameter_value
    }
}

/// Role/staleness context for replica gating, mirrored from the
/// serving layer's config so the gate lives at the same statement
/// boundary as the native wire's.
#[derive(Debug, Clone, Default)]
pub struct ExecEnv {
    /// The engine is a replication follower.
    pub is_replica: bool,
    /// Where writes should go instead (attached to refusals).
    pub leader_hint: String,
    /// Current replication lag in LSNs.
    pub repl_lag: u64,
    /// Staleness bound for follower reads.
    pub max_lag_lsn: u64,
}

/// What executing one statement produced.
#[derive(Debug)]
pub enum StmtOutcome {
    /// Finished; response messages were appended to `out`.
    Complete,
    /// A validated `CREATE INDEX`: the caller spawns the online build
    /// and owns the progress → `NOTICE` → `CommandComplete` exchange.
    StartBuild {
        /// Table to index.
        table: TableId,
        /// Engine index specs (names + key column positions).
        specs: Vec<IndexSpec>,
        /// Build algorithm from the `USING` clause (SF default).
        algorithm: BuildAlgorithm,
        /// Build tuning from the `WITH` clause (defaults otherwise).
        options: BuildOptions,
    },
}

/// Validate a `WITH (key = value, ...)` clause into [`BuildOptions`].
/// Unknown keys and malformed values are statement errors (SQLSTATE
/// `22023`, invalid_parameter_value), named specifically so the user
/// can fix the statement.
fn parse_build_options(with_options: &[(String, String)]) -> Result<BuildOptions, PgError> {
    let invalid = |msg: String| PgError {
        sqlstate: "22023",
        message: msg,
    };
    let as_bool = |key: &str, val: &str| match val {
        "on" | "true" | "yes" | "1" => Ok(true),
        "off" | "false" | "no" | "0" => Ok(false),
        _ => Err(invalid(format!(
            "invalid value \"{val}\" for option \"{key}\" (expected on/off)"
        ))),
    };
    let as_count = |key: &str, val: &str| {
        val.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
            invalid(format!(
                "invalid value \"{val}\" for option \"{key}\" (expected a positive integer)"
            ))
        })
    };
    let mut opts = BuildOptions::default();
    for (key, val) in with_options {
        match key.as_str() {
            "parallel_workers" => opts.parallel_workers = as_count(key, val)?,
            "compress_runs" => opts.compress_runs = as_bool(key, val)?,
            "sorted_drain" => opts.sort_side_file_drain = Some(as_bool(key, val)?),
            "checkpoint_every" => opts.checkpoint_every = Some(as_count(key, val)?),
            other => {
                return Err(invalid(format!(
                    "unknown index build option \"{other}\" (parallel_workers | \
                     compress_runs | sorted_drain | checkpoint_every)"
                )))
            }
        }
    }
    Ok(opts)
}

/// Execute one statement against `session`, appending backend
/// messages to `out`. Errors are returned (not encoded) so the caller
/// can also flip its transaction-failed state.
pub fn execute_statement(
    stmt: &Statement,
    session: &mut Session,
    catalog: &Catalog,
    env: &ExecEnv,
    out: &mut Vec<u8>,
) -> Result<StmtOutcome, PgError> {
    if env.is_replica {
        gate_replica(stmt, env)?;
    }
    match stmt {
        Statement::Begin => {
            session.begin().map_err(|e| PgError::from_engine(&e))?;
            proto::command_complete(out, "BEGIN");
        }
        Statement::Commit => {
            session.commit().map_err(|e| PgError::from_engine(&e))?;
            proto::command_complete(out, "COMMIT");
        }
        Statement::Rollback => {
            session.rollback().map_err(|e| PgError::from_engine(&e))?;
            proto::command_complete(out, "ROLLBACK");
        }
        Statement::CreateTable { name, cols } => {
            catalog
                .create(name, cols.clone(), session.db())
                .ok_or_else(|| PgError {
                    sqlstate: "42P07",
                    message: format!("relation \"{name}\" already exists"),
                })?;
            proto::command_complete(out, "CREATE TABLE");
        }
        Statement::Insert { table, cols, rows } => {
            let meta = lookup_table(catalog, table)?;
            validate_insert_cols(&meta, cols.as_deref())?;
            for row in rows {
                if !meta.cols.is_empty() && row.len() != meta.cols.len() {
                    return Err(PgError::syntax(&format!(
                        "INSERT row has {} expressions, table \"{table}\" has {} columns",
                        row.len(),
                        meta.cols.len()
                    )));
                }
                session
                    .insert(meta.id, &Record(row.clone()))
                    .map_err(|e| PgError::from_engine(&e))?;
            }
            proto::command_complete(out, &format!("INSERT 0 {}", rows.len()));
        }
        Statement::Select {
            table,
            cols,
            filter,
        } => {
            let meta = lookup_table(catalog, table)?;
            let rows = matching_rows(session, &meta, filter.as_ref())?;
            emit_rows(&meta, cols, &rows, out)?;
        }
        Statement::Update { table, set, filter } => {
            let meta = lookup_table(catalog, table)?;
            let assignments: Vec<(usize, i64)> = set
                .iter()
                .map(|(col, v)| Ok((col_position(&meta, col)?, *v)))
                .collect::<Result<_, PgError>>()?;
            let rows = matching_rows(session, &meta, Some(filter))?;
            let n = rows.len();
            for (rid, rec) in rows {
                let mut new = rec;
                for &(pos, v) in &assignments {
                    if pos >= new.0.len() {
                        return Err(PgError {
                            sqlstate: "42703",
                            message: format!(
                                "column position {pos} out of range for a {}-column row",
                                new.0.len()
                            ),
                        });
                    }
                    new.0[pos] = v;
                }
                session
                    .update(meta.id, rid, &new)
                    .map_err(|e| PgError::from_engine(&e))?;
            }
            proto::command_complete(out, &format!("UPDATE {n}"));
        }
        Statement::Delete { table, filter } => {
            let meta = lookup_table(catalog, table)?;
            let rows = matching_rows(session, &meta, Some(filter))?;
            let n = rows.len();
            for (rid, _) in rows {
                session
                    .delete(meta.id, rid)
                    .map_err(|e| PgError::from_engine(&e))?;
            }
            proto::command_complete(out, &format!("DELETE {n}"));
        }
        Statement::CreateIndex {
            unique,
            name,
            table,
            cols,
            algo,
            with_options,
        } => {
            let meta = lookup_table(catalog, table)?;
            if let Some(tx) = session.current_tx() {
                return Err(PgError::from_engine(&Error::TxAlreadyOpen(tx)));
            }
            if session
                .db()
                .indexes_of(meta.id)
                .iter()
                .any(|rt| rt.def.name == *name)
            {
                return Err(PgError {
                    sqlstate: "42710",
                    message: format!("index \"{name}\" already exists on \"{table}\""),
                });
            }
            let key_cols = cols
                .iter()
                .map(|c| col_position(&meta, c))
                .collect::<Result<Vec<_>, _>>()?;
            let algorithm = match algo.as_deref() {
                // `btree` is what stock clients say; SF is the paper's
                // no-quiesce default.
                None | Some("sf") | Some("btree") => BuildAlgorithm::Sf,
                Some("nsf") => BuildAlgorithm::Nsf,
                Some("offline") => BuildAlgorithm::Offline,
                Some(other) => {
                    return Err(PgError::unsupported(&format!(
                        "unknown build algorithm \"{other}\" (sf | nsf | offline)"
                    )))
                }
            };
            let options = parse_build_options(with_options)?;
            return Ok(StmtOutcome::StartBuild {
                table: meta.id,
                specs: vec![IndexSpec {
                    name: name.clone(),
                    key_cols,
                    unique: *unique,
                }],
                algorithm,
                options,
            });
        }
    }
    Ok(StmtOutcome::Complete)
}

/// Replica gate, mirroring the native wire's: writes are refused with
/// a leader hint; reads are bounded by the staleness budget.
fn gate_replica(stmt: &Statement, env: &ExecEnv) -> Result<(), PgError> {
    match stmt {
        Statement::Begin
        | Statement::Insert { .. }
        | Statement::Update { .. }
        | Statement::Delete { .. }
        | Statement::CreateTable { .. }
        | Statement::CreateIndex { .. } => {
            let hint = if env.leader_hint.is_empty() {
                String::new()
            } else {
                format!(" (leader: {})", env.leader_hint)
            };
            Err(PgError {
                sqlstate: "25006",
                message: format!(
                    "server is a replication follower; writes go to the primary{hint}"
                ),
            })
        }
        Statement::Select { .. } if env.repl_lag > env.max_lag_lsn => Err(PgError {
            sqlstate: "72000",
            message: format!(
                "replication lag {} LSNs exceeds max_lag_lsn {}",
                env.repl_lag, env.max_lag_lsn
            ),
        }),
        _ => Ok(()),
    }
}

fn lookup_table(catalog: &Catalog, name: &str) -> Result<std::sync::Arc<TableMeta>, PgError> {
    catalog.get(name).ok_or_else(|| PgError::no_table(name))
}

fn col_position(meta: &TableMeta, name: &str) -> Result<usize, PgError> {
    meta.col_position(name)
        .ok_or_else(|| PgError::no_column(name))
}

/// An explicit INSERT column list must match the declared columns in
/// order — partial/reordered lists would need per-column defaults the
/// engine does not have.
fn validate_insert_cols(meta: &TableMeta, cols: Option<&[String]>) -> Result<(), PgError> {
    let Some(cols) = cols else { return Ok(()) };
    if meta.cols.is_empty() || cols == meta.cols {
        Ok(())
    } else {
        Err(PgError::unsupported(
            "INSERT column lists must name all declared columns in order",
        ))
    }
}

/// The complete index over exactly `[pos]`, if one exists — the
/// access path for point and range predicates on that column.
fn complete_index_on(session: &Session, table: TableId, pos: usize) -> Option<IndexId> {
    session
        .db()
        .indexes_of(table)
        .iter()
        .find(|rt| rt.state() == IndexState::Complete && rt.def.key_cols == [pos])
        .map(|rt| rt.def.id)
}

/// Rows matching `filter`: index point lookup, index range scan, or
/// heap scan + residual filter.
fn matching_rows(
    session: &mut Session,
    meta: &TableMeta,
    filter: Option<&Filter>,
) -> Result<Vec<(Rid, Record)>, PgError> {
    let eng = |e: Error| PgError::from_engine(&e);
    match filter {
        None => session.table_scan(meta.id).map_err(eng),
        Some(Filter::Eq(col, v)) => {
            let pos = col_position(meta, col)?;
            match complete_index_on(session, meta.id, pos) {
                Some(idx) => {
                    let rids = session.lookup(idx, &KeyValue::from_i64(*v)).map_err(eng)?;
                    read_all(session, meta.id, rids)
                }
                None => {
                    let mut rows = session.table_scan(meta.id).map_err(eng)?;
                    rows.retain(|(_, rec)| rec.0.get(pos) == Some(v));
                    Ok(rows)
                }
            }
        }
        Some(Filter::Between(col, lo, hi)) => {
            if lo > hi {
                return Ok(Vec::new());
            }
            let pos = col_position(meta, col)?;
            match complete_index_on(session, meta.id, pos) {
                Some(idx) => {
                    let rids = session
                        .lookup_range(idx, &KeyValue::from_i64(*lo), &KeyValue::from_i64(*hi))
                        .map_err(eng)?;
                    read_all(session, meta.id, rids)
                }
                None => {
                    let mut rows = session.table_scan(meta.id).map_err(eng)?;
                    rows.retain(|(_, rec)| rec.0.get(pos).is_some_and(|v| (lo..=hi).contains(&v)));
                    Ok(rows)
                }
            }
        }
    }
}

fn read_all(
    session: &Session,
    table: TableId,
    rids: Vec<Rid>,
) -> Result<Vec<(Rid, Record)>, PgError> {
    rids.into_iter()
        .map(|rid| {
            session
                .read(table, rid)
                .map(|rec| (rid, rec))
                .map_err(|e| PgError::from_engine(&e))
        })
        .collect()
}

/// Encode `RowDescription` + `DataRow`s + `CommandComplete` for a
/// result set under the requested projection.
fn emit_rows(
    meta: &TableMeta,
    cols: &SelectCols,
    rows: &[(Rid, Record)],
    out: &mut Vec<u8>,
) -> Result<(), PgError> {
    // Positions to project, and their display names.
    let (positions, names): (Vec<usize>, Vec<String>) = match cols {
        SelectCols::Cols(named) => {
            let positions = named
                .iter()
                .map(|c| col_position(meta, c))
                .collect::<Result<Vec<_>, _>>()?;
            (positions, named.clone())
        }
        SelectCols::Star => {
            // Declared schemas project their declared arity; undeclared
            // ones project the widest row seen (positional names).
            let arity = if meta.cols.is_empty() {
                rows.iter().map(|(_, r)| r.0.len()).max().unwrap_or(0)
            } else {
                meta.cols.len()
            };
            let positions: Vec<usize> = (0..arity).collect();
            let names = positions.iter().map(|&i| meta.col_name(i)).collect();
            (positions, names)
        }
    };
    proto::row_description(out, &names);
    for (_, rec) in rows {
        let vals: Vec<Option<String>> = positions
            .iter()
            .map(|&p| rec.0.get(p).map(i64::to_string))
            .collect();
        proto::data_row(out, &vals);
    }
    proto::command_complete(out, &format!("SELECT {}", rows.len()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;
    use mohan_common::EngineConfig;
    use mohan_oib::Db;

    fn setup() -> (std::sync::Arc<Db>, Session, Catalog) {
        let db = Db::new(EngineConfig::small());
        let session = Session::new(std::sync::Arc::clone(&db));
        let catalog = Catalog::new(&db);
        (db, session, catalog)
    }

    fn run(
        sql: &str,
        session: &mut Session,
        catalog: &Catalog,
        env: &ExecEnv,
    ) -> Result<Vec<u8>, PgError> {
        let mut out = Vec::new();
        for stmt in parse(sql)? {
            match execute_statement(&stmt, session, catalog, env, &mut out)? {
                StmtOutcome::Complete => {}
                StmtOutcome::StartBuild { .. } => panic!("no builds in this helper"),
            }
        }
        Ok(out)
    }

    #[test]
    fn crud_through_sql() {
        let (_db, mut session, catalog) = setup();
        let env = ExecEnv::default();
        run(
            "CREATE TABLE kv (k bigint, v bigint); \
             INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30); \
             UPDATE kv SET v = 99 WHERE k = 2; \
             DELETE FROM kv WHERE k = 3",
            &mut session,
            &catalog,
            &env,
        )
        .unwrap();
        let out = run("SELECT v FROM kv WHERE k = 2", &mut session, &catalog, &env).unwrap();
        let text = String::from_utf8_lossy(&out).into_owned();
        assert!(text.contains("99"), "expected updated value in {text:?}");
        let out = run("SELECT * FROM kv", &mut session, &catalog, &env).unwrap();
        assert!(String::from_utf8_lossy(&out).contains("SELECT 2"));
    }

    #[test]
    fn select_uses_index_when_complete() {
        let (db, mut session, catalog) = setup();
        let env = ExecEnv::default();
        run(
            "CREATE TABLE kv (k bigint, v bigint); \
             INSERT INTO kv VALUES (5, 50), (6, 60)",
            &mut session,
            &catalog,
            &env,
        )
        .unwrap();
        let meta = catalog.get("kv").unwrap();
        session
            .create_index(
                meta.id,
                IndexSpec {
                    name: "kv_k".into(),
                    key_cols: vec![0],
                    unique: false,
                },
                BuildAlgorithm::Sf,
            )
            .unwrap();
        assert!(complete_index_on(&session, meta.id, 0).is_some());
        let out = run(
            "SELECT v FROM kv WHERE k BETWEEN 5 AND 6",
            &mut session,
            &catalog,
            &env,
        )
        .unwrap();
        let text = String::from_utf8_lossy(&out).into_owned();
        assert!(text.contains("SELECT 2"), "{text:?}");
        drop(db);
    }

    #[test]
    fn errors_map_to_sqlstates() {
        let (_db, mut session, catalog) = setup();
        let env = ExecEnv::default();
        assert_eq!(
            run("SELECT * FROM missing", &mut session, &catalog, &env)
                .unwrap_err()
                .sqlstate,
            "42P01"
        );
        run("CREATE TABLE kv (k, v)", &mut session, &catalog, &env).unwrap();
        assert_eq!(
            run("CREATE TABLE kv (k)", &mut session, &catalog, &env)
                .unwrap_err()
                .sqlstate,
            "42P07"
        );
        assert_eq!(
            run("SELECT nope FROM kv", &mut session, &catalog, &env)
                .unwrap_err()
                .sqlstate,
            "42703"
        );
        assert_eq!(
            run("INSERT INTO kv VALUES (1)", &mut session, &catalog, &env)
                .unwrap_err()
                .sqlstate,
            "42601"
        );
        assert_eq!(
            run("COMMIT", &mut session, &catalog, &env)
                .unwrap_err()
                .sqlstate,
            "25P01"
        );
    }

    #[test]
    fn replica_gate_maps_writes_and_stale_reads() {
        let (_db, mut session, catalog) = setup();
        run(
            "CREATE TABLE kv (k, v)",
            &mut session,
            &catalog,
            &ExecEnv::default(),
        )
        .unwrap();
        let env = ExecEnv {
            is_replica: true,
            leader_hint: "10.0.0.1:4400".into(),
            repl_lag: 100,
            max_lag_lsn: 10,
        };
        let err = run("INSERT INTO kv VALUES (1, 1)", &mut session, &catalog, &env).unwrap_err();
        assert_eq!(err.sqlstate, "25006");
        assert!(err.message.contains("10.0.0.1:4400"));
        let err = run("SELECT * FROM kv", &mut session, &catalog, &env).unwrap_err();
        assert_eq!(err.sqlstate, "72000");
        // Within the staleness budget the read is served.
        let ok_env = ExecEnv { repl_lag: 5, ..env };
        run("SELECT * FROM kv", &mut session, &catalog, &ok_env).unwrap();
    }

    #[test]
    fn create_index_validates_then_defers() {
        let (_db, mut session, catalog) = setup();
        let env = ExecEnv::default();
        run("CREATE TABLE kv (k, v)", &mut session, &catalog, &env).unwrap();
        let stmt = &parse("CREATE UNIQUE INDEX kv_k ON kv (k)").unwrap()[0];
        let mut out = Vec::new();
        match execute_statement(stmt, &mut session, &catalog, &env, &mut out).unwrap() {
            StmtOutcome::StartBuild {
                specs,
                algorithm,
                options,
                ..
            } => {
                assert_eq!(specs[0].name, "kv_k");
                assert_eq!(specs[0].key_cols, vec![0]);
                assert!(specs[0].unique);
                assert!(matches!(algorithm, BuildAlgorithm::Sf));
                assert_eq!(options, BuildOptions::default());
            }
            StmtOutcome::Complete => panic!("expected a build"),
        }
        assert!(out.is_empty());
        let stmt = &parse("CREATE INDEX bad ON kv USING zzz (k)").unwrap()[0];
        let err = execute_statement(stmt, &mut session, &catalog, &env, &mut out).unwrap_err();
        assert_eq!(err.sqlstate, "0A000");
    }

    #[test]
    fn create_index_with_clause_validates_options() {
        let (_db, mut session, catalog) = setup();
        let env = ExecEnv::default();
        run("CREATE TABLE kv (k, v)", &mut session, &catalog, &env).unwrap();
        let stmt = &parse(
            "CREATE INDEX kv_v ON kv (v) WITH \
             (parallel_workers = 4, compress_runs = on, \
              sorted_drain = off, checkpoint_every = 5000)",
        )
        .unwrap()[0];
        let mut out = Vec::new();
        match execute_statement(stmt, &mut session, &catalog, &env, &mut out).unwrap() {
            StmtOutcome::StartBuild { options, .. } => {
                assert_eq!(
                    options,
                    BuildOptions::new()
                        .workers(4)
                        .compress(true)
                        .sorted_drain(false)
                        .checkpoint_every(5000)
                );
            }
            StmtOutcome::Complete => panic!("expected a build"),
        }
        // Unknown keys and malformed values are 22023 statement errors.
        for bad in [
            "CREATE INDEX b1 ON kv (v) WITH (fillfactor = 70)",
            "CREATE INDEX b2 ON kv (v) WITH (parallel_workers = 0)",
            "CREATE INDEX b3 ON kv (v) WITH (compress_runs = maybe)",
            "CREATE INDEX b4 ON kv (v) WITH (checkpoint_every = -5)",
        ] {
            let stmt = &parse(bad).unwrap()[0];
            let err = execute_statement(stmt, &mut session, &catalog, &env, &mut out).unwrap_err();
            assert_eq!(err.sqlstate, "22023", "{bad}");
        }
        // The engine-level empty-spec rejection maps to 22023 too.
        assert_eq!(
            sqlstate_of(&Error::InvalidArg("no index specs".into())),
            "22023"
        );
    }
}
