//! A Postgres wire front door for the online-index-build engine.
//!
//! Two layers, both dependency-free (the container has no crates.io
//! access):
//!
//! * [`proto`] — the Postgres **v3 startup + simple-query protocol**:
//!   startup packet parsing (including the `SSLRequest` /
//!   `GSSENCRequest` probes and `CancelRequest`), the typed
//!   `[type][len][body]` message framing, and encoders for every
//!   backend message the simple-query flow needs
//!   (`AuthenticationOk`, `ParameterStatus`, `ReadyForQuery`,
//!   `RowDescription`/`DataRow`/`CommandComplete`, `ErrorResponse`
//!   with SQLSTATE, `NoticeResponse`, `EmptyQueryResponse`).
//! * [`sql`] + [`exec`] — a hand-rolled tokenizer/parser for the
//!   statement subset the engine can serve (`CREATE TABLE`,
//!   `CREATE INDEX` — online, per the paper — `INSERT`, `SELECT`,
//!   `UPDATE`/`DELETE` by key, `BEGIN`/`COMMIT`/`ROLLBACK`), executed
//!   against [`mohan_oib::Session`] so the statement-level API
//!   boundary stays identical to the native binary protocol.
//!
//! The point of the subset is the paper's headline capability on a
//! protocol every client already speaks: `psql` (or any Postgres load
//! tool) connects, generates insert traffic, and issues
//! `CREATE INDEX` **mid-load** — the build runs online, streaming
//! `NOTICE` progress lines fed from the build-progress hook, while
//! the inserts keep committing.
//!
//! [`catalog`] maps SQL table names onto engine [`mohan_common::TableId`]s;
//! tables created outside SQL (the native wire, seeds) are visible as
//! `t<ID>` with positional columns `c0..cN`.

#![warn(missing_docs)]

pub mod catalog;
pub mod exec;
pub mod proto;
pub mod sql;

pub use catalog::{Catalog, TableMeta};
pub use exec::{sqlstate_of, ExecEnv, PgError, StmtOutcome};
pub use sql::{parse, query_may_block, Statement};
