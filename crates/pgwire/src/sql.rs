//! Hand-rolled tokenizer and parser for the SQL subset the engine
//! serves.
//!
//! Grammar (case-insensitive keywords, `--` and `/* */` comments,
//! `;`-separated multi-statement strings):
//!
//! ```text
//! CREATE TABLE name ( col [type-words ...] [, ...] )
//! CREATE [UNIQUE] INDEX name ON table [USING sf|nsf|offline|btree] ( col [, ...] )
//!     [WITH ( option = value [, ...] )]
//! INSERT INTO table [( col [, ...] )] VALUES ( int [, ...] ) [, ( ... )]*
//! SELECT * | col [, ...] FROM table [WHERE col = int | col BETWEEN int AND int]
//! UPDATE table SET col = int [, ...] WHERE <filter>
//! DELETE FROM table WHERE <filter>
//! BEGIN | COMMIT | END | ROLLBACK | ABORT
//! ```
//!
//! Values are 64-bit integers — the engine's record type is a vector
//! of `i64` columns. Everything outside the subset fails with a
//! sqlstate-carrying [`PgError`], never a panic (fuzzed below).

use crate::exec::PgError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword, lowercased unless double-quoted.
    Ident(String),
    /// Integer literal (sign handled by the parser).
    Number(i64),
    /// Single-quoted string literal (accepted lexically, rejected by
    /// the parser with a clear error — the engine stores integers).
    Str(String),
    /// Punctuation: `( ) , ; * = -`
    Symbol(char),
}

/// Tokenize `sql`. Total: any input either tokenizes or returns a
/// syntax error.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, PgError> {
    let b = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(PgError::syntax("unterminated /* comment"));
                }
            }
            // No arithmetic in the grammar, so `-` directly before a
            // digit is always unary minus; folding it into the literal
            // also lets i64::MIN parse (its magnitude overflows alone).
            b'-' if b.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let start = i;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).expect("sign+digits are utf8");
                let n: i64 = text
                    .parse()
                    .map_err(|_| PgError::syntax(&format!("integer out of range: {text}")))?;
                out.push(Token::Number(n));
            }
            // `<`/`>` tokenize so unsupported comparison predicates
            // fail in the parser with a message naming what *is*
            // supported, not as a lexical error.
            b'(' | b')' | b',' | b';' | b'*' | b'=' | b'-' | b'<' | b'>' | b'.' => {
                out.push(Token::Symbol(c as char));
                i += 1;
            }
            b'\'' => {
                i += 1;
                let start = i;
                loop {
                    match b.get(i) {
                        None => return Err(PgError::syntax("unterminated string literal")),
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => i += 2,
                        Some(b'\'') => break,
                        Some(_) => i += 1,
                    }
                }
                let s = String::from_utf8_lossy(&b[start..i]).replace("''", "'");
                out.push(Token::Str(s));
                i += 1;
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(PgError::syntax("unterminated quoted identifier"));
                }
                out.push(Token::Ident(
                    String::from_utf8_lossy(&b[start..i]).into_owned(),
                ));
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).expect("digits are utf8");
                let n: i64 = text
                    .parse()
                    .map_err(|_| PgError::syntax(&format!("integer out of range: {text}")))?;
                out.push(Token::Number(n));
            }
            c if (c as char).is_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() {
                    let ch = b[i];
                    if ch == b'_' || ch.is_ascii_alphanumeric() || ch >= 0x80 {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(
                    String::from_utf8_lossy(&b[start..i]).to_lowercase(),
                ));
            }
            other => {
                return Err(PgError::syntax(&format!(
                    "unexpected character {:?}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

/// The column list of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectCols {
    /// `SELECT *`
    Star,
    /// An explicit projection list.
    Cols(Vec<String>),
}

/// A row-selection predicate (`WHERE` clause subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `col = value` — a point lookup, served through an index on
    /// `col` when one is complete.
    Eq(String, i64),
    /// `col BETWEEN lo AND hi` — a key-range lookup.
    Between(String, i64, i64),
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (cols)` — registers the name and columns in
    /// the SQL catalog and creates the heap table.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names, in declaration order.
        cols: Vec<String>,
    },
    /// `CREATE [UNIQUE] INDEX ...` — starts an **online** build.
    CreateIndex {
        /// Whether the index enforces unique keys.
        unique: bool,
        /// Index name.
        name: String,
        /// Table the index covers.
        table: String,
        /// Indexed columns, in key order.
        cols: Vec<String>,
        /// Build algorithm from `USING` (`sf` default; `btree` is an
        /// accepted alias for `sf` so stock clients work unchanged).
        algo: Option<String>,
        /// `WITH (key = value, ...)` build options, in statement
        /// order, values as written (numbers rendered decimal). The
        /// executor validates keys and values; unknown ones are a
        /// statement error, not a parse error.
        with_options: Vec<(String, String)>,
    },
    /// `INSERT INTO ... VALUES ...` (multi-row).
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        cols: Option<Vec<String>>,
        /// Row tuples.
        rows: Vec<Vec<i64>>,
    },
    /// `SELECT ... FROM ... [WHERE ...]`.
    Select {
        /// Source table.
        table: String,
        /// Projection.
        cols: SelectCols,
        /// Optional predicate.
        filter: Option<Filter>,
    },
    /// `UPDATE ... SET ... WHERE ...`.
    Update {
        /// Target table.
        table: String,
        /// `col = value` assignments.
        set: Vec<(String, i64)>,
        /// Row selection (required — unqualified UPDATE is refused).
        filter: Filter,
    },
    /// `DELETE FROM ... WHERE ...`.
    Delete {
        /// Target table.
        table: String,
        /// Row selection (required — unqualified DELETE is refused).
        filter: Filter,
    },
    /// `BEGIN`.
    Begin,
    /// `COMMIT` / `END`.
    Commit,
    /// `ROLLBACK` / `ABORT`.
    Rollback,
}

impl Statement {
    /// Metric label for `server.pg_req_us.<kind>`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable { .. } => "CreateTable",
            Statement::CreateIndex { .. } => "CreateIndex",
            Statement::Insert { .. } => "Insert",
            Statement::Select { .. } => "Select",
            Statement::Update { .. } => "Update",
            Statement::Delete { .. } => "Delete",
            Statement::Begin => "Begin",
            Statement::Commit => "Commit",
            Statement::Rollback => "Rollback",
        }
    }

    /// Transaction-control statements: exempt from admission control
    /// (they release locks and slots; refusing them at the cap would
    /// let a saturated server deadlock against itself, same reasoning
    /// as the native protocol's `Commit`/`Rollback` exemption).
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Statement::Begin | Statement::Commit | Statement::Rollback
        )
    }

    /// Statements that may sit in engine lock waits. The reactor's
    /// event loop must never block, so these run on the shard's
    /// executor thread (mirror of `Request::frame_may_block`).
    #[must_use]
    pub fn may_block(&self) -> bool {
        !self.is_control()
    }
}

/// Cheap classifier used by the reactor *before* parsing: does this
/// query string's first statement possibly acquire engine locks?
/// Errs on the side of `true` — misclassifying a blocking statement
/// as inline could deadlock the event loop, while the converse only
/// costs an executor round-trip.
#[must_use]
pub fn query_may_block(sql: &str) -> bool {
    let mut rest = sql.trim_start();
    loop {
        if let Some(r) = rest.strip_prefix(';') {
            rest = r.trim_start();
        } else if let Some(r) = rest.strip_prefix("--") {
            match r.find('\n') {
                Some(nl) => rest = r[nl + 1..].trim_start(),
                None => return false, // nothing but a comment
            }
        } else {
            break;
        }
    }
    let word: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    if word.is_empty() {
        return !rest.is_empty(); // garbage: let the executor reject it
    }
    !["begin", "commit", "end", "rollback", "abort"]
        .iter()
        .any(|kw| word.eq_ignore_ascii_case(kw))
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.at)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Symbol(c)) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), PgError> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(PgError::syntax(&format!("expected {c:?}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w == kw) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), PgError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(PgError::syntax(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, PgError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(PgError::syntax(&format!("expected {what}"))),
        }
    }

    fn number(&mut self) -> Result<i64, PgError> {
        let neg = self.eat_symbol('-');
        match self.next() {
            Some(Token::Number(n)) => Ok(if neg { n.checked_neg().unwrap_or(n) } else { n }),
            Some(Token::Str(_)) => Err(PgError::unsupported(
                "string values are not supported; columns are 64-bit integers",
            )),
            _ => Err(PgError::syntax("expected an integer value")),
        }
    }

    fn ident_list(&mut self, what: &str) -> Result<Vec<String>, PgError> {
        self.expect_symbol('(')?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident(what)?);
            if self.eat_symbol(',') {
                continue;
            }
            self.expect_symbol(')')?;
            return Ok(cols);
        }
    }

    fn filter(&mut self) -> Result<Filter, PgError> {
        let col = self.ident("a column name")?;
        if self.eat_symbol('=') {
            return Ok(Filter::Eq(col, self.number()?));
        }
        if self.eat_kw("between") {
            let lo = self.number()?;
            self.expect_kw("and")?;
            let hi = self.number()?;
            return Ok(Filter::Between(col, lo, hi));
        }
        Err(PgError::unsupported(
            "only `col = n` and `col BETWEEN a AND b` predicates are supported",
        ))
    }

    fn statement(&mut self) -> Result<Statement, PgError> {
        let head = self.ident("a statement keyword")?;
        match head.as_str() {
            "begin" | "start" => {
                // BEGIN [WORK|TRANSACTION], START TRANSACTION
                while matches!(self.peek(), Some(Token::Ident(w)) if w == "work" || w == "transaction")
                {
                    self.at += 1;
                }
                Ok(Statement::Begin)
            }
            "commit" | "end" => {
                while matches!(self.peek(), Some(Token::Ident(w)) if w == "work" || w == "transaction")
                {
                    self.at += 1;
                }
                Ok(Statement::Commit)
            }
            "rollback" | "abort" => {
                while matches!(self.peek(), Some(Token::Ident(w)) if w == "work" || w == "transaction")
                {
                    self.at += 1;
                }
                Ok(Statement::Rollback)
            }
            "create" => self.create(),
            "insert" => self.insert(),
            "select" => self.select(),
            "update" => self.update(),
            "delete" => self.delete(),
            other => Err(PgError::unsupported(&format!(
                "unsupported statement: {}",
                other.to_uppercase()
            ))),
        }
    }

    fn create(&mut self) -> Result<Statement, PgError> {
        if self.eat_kw("table") {
            let name = self.ident("a table name")?;
            self.expect_symbol('(')?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident("a column name")?);
                // Skip type words and constraints up to the next
                // separator: `k bigint primary key` declares column k.
                while matches!(self.peek(), Some(Token::Ident(_) | Token::Number(_))) {
                    self.at += 1;
                }
                if self.eat_symbol(',') {
                    continue;
                }
                self.expect_symbol(')')?;
                return Ok(Statement::CreateTable { name, cols });
            }
        }
        let unique = self.eat_kw("unique");
        self.expect_kw("index")?;
        let name = self.ident("an index name")?;
        self.expect_kw("on")?;
        let table = self.ident("a table name")?;
        let algo = if self.eat_kw("using") {
            Some(self.ident("a build algorithm")?)
        } else {
            None
        };
        let cols = self.ident_list("a column name")?;
        let with_options = if self.eat_kw("with") {
            self.expect_symbol('(')?;
            let mut opts = Vec::new();
            loop {
                let key = self.ident("an option name")?;
                self.expect_symbol('=')?;
                let val = match self.next() {
                    Some(Token::Ident(s)) => s,
                    Some(Token::Number(n)) => n.to_string(),
                    _ => return Err(PgError::syntax("expected an option value")),
                };
                opts.push((key, val));
                if self.eat_symbol(',') {
                    continue;
                }
                self.expect_symbol(')')?;
                break;
            }
            opts
        } else {
            Vec::new()
        };
        Ok(Statement::CreateIndex {
            unique,
            name,
            table,
            cols,
            algo,
            with_options,
        })
    }

    fn insert(&mut self) -> Result<Statement, PgError> {
        self.expect_kw("into")?;
        let table = self.ident("a table name")?;
        let cols = if self.peek() == Some(&Token::Symbol('(')) {
            Some(self.ident_list("a column name")?)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.number()?);
                if self.eat_symbol(',') {
                    continue;
                }
                self.expect_symbol(')')?;
                break;
            }
            rows.push(row);
            if self.eat_symbol(',') {
                continue;
            }
            return Ok(Statement::Insert { table, cols, rows });
        }
    }

    fn select(&mut self) -> Result<Statement, PgError> {
        let cols = if self.eat_symbol('*') {
            SelectCols::Star
        } else {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident("a column name")?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            SelectCols::Cols(cols)
        };
        self.expect_kw("from")?;
        let table = self.ident("a table name")?;
        let filter = if self.eat_kw("where") {
            Some(self.filter()?)
        } else {
            None
        };
        Ok(Statement::Select {
            table,
            cols,
            filter,
        })
    }

    fn update(&mut self) -> Result<Statement, PgError> {
        let table = self.ident("a table name")?;
        self.expect_kw("set")?;
        let mut set = Vec::new();
        loop {
            let col = self.ident("a column name")?;
            self.expect_symbol('=')?;
            set.push((col, self.number()?));
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_kw("where")?;
        let filter = self.filter()?;
        Ok(Statement::Update { table, set, filter })
    }

    fn delete(&mut self) -> Result<Statement, PgError> {
        self.expect_kw("from")?;
        let table = self.ident("a table name")?;
        self.expect_kw("where")?;
        let filter = self.filter()?;
        Ok(Statement::Delete { table, filter })
    }
}

/// Parse a query string into its `;`-separated statements. An empty
/// (or all-comment) string parses to an empty vector — the caller
/// answers `EmptyQueryResponse`.
pub fn parse(sql: &str) -> Result<Vec<Statement>, PgError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, at: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(';') {}
        if p.peek().is_none() {
            return Ok(out);
        }
        out.push(p.statement()?);
        match p.peek() {
            None => return Ok(out),
            Some(Token::Symbol(';')) => continue,
            Some(_) => return Err(PgError::syntax("expected ; between statements")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_the_subset() {
        let stmts = parse(
            "CREATE TABLE kv (k bigint primary key, v bigint);\n\
             CREATE UNIQUE INDEX kv_k ON kv USING sf (k);\n\
             INSERT INTO kv (k, v) VALUES (1, 10), (2, -20);\n\
             SELECT k, v FROM kv WHERE k = 1;\n\
             SELECT * FROM kv WHERE k BETWEEN 1 AND 2;\n\
             UPDATE kv SET v = 3 WHERE k = 2;\n\
             DELETE FROM kv WHERE k = 1;\n\
             BEGIN; COMMIT; ROLLBACK;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 10);
        assert_eq!(
            stmts[0],
            Statement::CreateTable {
                name: "kv".into(),
                cols: vec!["k".into(), "v".into()],
            }
        );
        assert_eq!(
            stmts[1],
            Statement::CreateIndex {
                unique: true,
                name: "kv_k".into(),
                table: "kv".into(),
                cols: vec!["k".into()],
                algo: Some("sf".into()),
                with_options: vec![],
            }
        );
        assert_eq!(
            stmts[2],
            Statement::Insert {
                table: "kv".into(),
                cols: Some(vec!["k".into(), "v".into()]),
                rows: vec![vec![1, 10], vec![2, -20]],
            }
        );
        assert!(
            matches!(&stmts[3], Statement::Select { filter: Some(Filter::Eq(c, 1)), .. } if c == "k")
        );
        assert!(matches!(
            &stmts[4],
            Statement::Select {
                cols: SelectCols::Star,
                filter: Some(Filter::Between(_, 1, 2)),
                ..
            }
        ));
        assert_eq!(stmts[7], Statement::Begin);
        assert_eq!(stmts[8], Statement::Commit);
        assert_eq!(stmts[9], Statement::Rollback);
    }

    #[test]
    fn create_index_with_options_parses() {
        let stmts = parse(
            "CREATE INDEX kv_v ON kv USING sf (v) \
             WITH (parallel_workers = 4, compress_runs = on, \
                   sorted_drain = off, checkpoint_every = 5000)",
        )
        .unwrap();
        assert_eq!(
            stmts[0],
            Statement::CreateIndex {
                unique: false,
                name: "kv_v".into(),
                table: "kv".into(),
                cols: vec!["v".into()],
                algo: Some("sf".into()),
                with_options: vec![
                    ("parallel_workers".into(), "4".into()),
                    ("compress_runs".into(), "on".into()),
                    ("sorted_drain".into(), "off".into()),
                    ("checkpoint_every".into(), "5000".into()),
                ],
            }
        );
        // A WITH clause without parentheses is a syntax error.
        assert_eq!(
            parse("CREATE INDEX i ON t (k) WITH parallel_workers = 2")
                .unwrap_err()
                .sqlstate,
            "42601"
        );
    }

    #[test]
    fn empty_and_comments_parse_empty() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("  ;; -- nothing\n /* still nothing */ ;")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn keywords_case_insensitive_quotes_preserved() {
        let stmts = parse("select \"K\" from KV").unwrap();
        assert_eq!(
            stmts[0],
            Statement::Select {
                table: "kv".into(),
                cols: SelectCols::Cols(vec!["K".into()]),
                filter: None,
            }
        );
    }

    #[test]
    fn rejections_carry_sqlstates() {
        assert_eq!(parse("SELEC 1").unwrap_err().sqlstate, "0A000");
        assert_eq!(parse("SELECT FROM").unwrap_err().sqlstate, "42601");
        assert_eq!(parse("DROP TABLE kv").unwrap_err().sqlstate, "0A000");
        assert_eq!(
            parse("INSERT INTO kv VALUES ('x')").unwrap_err().sqlstate,
            "0A000"
        );
        assert_eq!(
            parse("DELETE FROM kv WHERE k > 3").unwrap_err().sqlstate,
            "0A000"
        );
        // Unqualified UPDATE/DELETE refuse at parse time.
        assert_eq!(parse("DELETE FROM kv").unwrap_err().sqlstate, "42601");
    }

    #[test]
    fn control_statements_classified_inline() {
        assert!(!query_may_block("BEGIN"));
        assert!(!query_may_block("  commit ;"));
        assert!(!query_may_block(";; RollBack"));
        assert!(!query_may_block("-- comment\nCOMMIT"));
        assert!(!query_may_block(""));
        assert!(query_may_block("INSERT INTO kv VALUES (1)"));
        assert!(query_may_block("SELECT * FROM kv"));
        assert!(query_may_block("garbage ###"));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// The tokenizer and parser are total over arbitrary input.
        #[test]
        fn parser_never_panics(sql in ".{0,120}") {
            let _ = parse(&sql);
            let _ = query_may_block(&sql);
        }

        /// Round-trip: a rendered INSERT re-parses to itself.
        #[test]
        fn insert_roundtrips(rows in prop::collection::vec(
            prop::collection::vec(any::<i64>(), 1..4), 1..4))
        {
            let arity = rows[0].len();
            let rows: Vec<Vec<i64>> =
                rows.into_iter().map(|mut r| { r.resize(arity, 0); r }).collect();
            let rendered = format!(
                "INSERT INTO t VALUES {}",
                rows.iter()
                    .map(|r| format!(
                        "({})",
                        r.iter().map(i64::to_string).collect::<Vec<_>>().join(", ")
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let stmts = parse(&rendered).unwrap();
            prop_assert_eq!(
                stmts,
                vec![Statement::Insert { table: "t".into(), cols: None, rows }]
            );
        }

        /// Round-trip: point and range SELECTs re-parse to themselves.
        #[test]
        fn select_roundtrips(k in any::<i64>(), hi in any::<i64>()) {
            let stmts = parse(&format!("SELECT * FROM t WHERE k = {k}")).unwrap();
            prop_assert_eq!(stmts, vec![Statement::Select {
                table: "t".into(),
                cols: SelectCols::Star,
                filter: Some(Filter::Eq("k".into(), k)),
            }]);
            let stmts = parse(&format!("SELECT a FROM t WHERE k BETWEEN {k} AND {hi}")).unwrap();
            prop_assert_eq!(stmts, vec![Statement::Select {
                table: "t".into(),
                cols: SelectCols::Cols(vec!["a".into()]),
                filter: Some(Filter::Between("k".into(), k, hi)),
            }]);
        }
    }
}
