//! Postgres v3 protocol framing and message encoding.
//!
//! The startup phase is untyped: one `[len: u32][payload]` packet
//! where `len` includes itself. Everything after is typed:
//! `[type: u8][len: u32][body]`, `len` again including itself (but
//! not the type byte). All integers are big-endian, all strings
//! NUL-terminated.
//!
//! Decoders here are *strict and total*: any length that is absurd or
//! over the cap is a [`FrameError`], truncated input is `Ok(None)`
//! (wait for more bytes), and nothing panics on garbage — the proptest
//! suite at the bottom feeds both splitters arbitrary bytes.

/// `SSLRequest` magic (1234.5679): answered with a single `'N'`.
pub const SSL_REQUEST_CODE: u32 = 80877103;
/// `CancelRequest` magic (1234.5678): carries a key we never issued;
/// the connection is simply closed.
pub const CANCEL_REQUEST_CODE: u32 = 80877102;
/// `GSSENCRequest` magic (1234.5680): answered with a single `'N'`.
pub const GSSENC_REQUEST_CODE: u32 = 80877104;
/// Protocol version 3.0 as sent in `StartupMessage`.
pub const PROTOCOL_V3: u32 = 3 << 16;

/// Startup packets are tiny (user/database/options); anything bigger
/// is not a Postgres client.
pub const MAX_STARTUP: usize = 16 * 1024;
/// Cap on one typed message, matching the native protocol's frame cap.
pub const MAX_MESSAGE: usize = 16 << 20;

/// Why a byte stream stopped being parseable as Postgres protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A declared length exceeds the cap (or is below the minimum).
    Oversized,
    /// The startup packet names a protocol major we do not speak.
    UnsupportedProtocol(u32),
    /// Structurally invalid bytes (unterminated strings, bad params).
    Garbled,
}

/// One parsed startup-phase packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Startup {
    /// `SSLRequest` probe — refuse with `'N'`, client retries plain.
    Ssl,
    /// `GSSENCRequest` probe — refuse with `'N'`.
    Gssenc,
    /// `CancelRequest` — close the connection.
    Cancel,
    /// A real v3 `StartupMessage` with its key/value parameters.
    Start {
        /// Parameters (`user`, `database`, ...), in wire order.
        params: Vec<(String, String)>,
    },
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    let b = buf.get(at..at + 4)?;
    Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Split one startup-phase packet off the front of `buf`. `Ok(None)`
/// means incomplete — keep reading.
pub fn take_startup(buf: &mut Vec<u8>) -> Result<Option<Startup>, FrameError> {
    let Some(len) = read_u32(buf, 0) else {
        return Ok(None);
    };
    let len = len as usize;
    if !(8..=MAX_STARTUP).contains(&len) {
        return Err(FrameError::Oversized);
    }
    if buf.len() < len {
        return Ok(None);
    }
    let code = read_u32(buf, 4).expect("len >= 8 checked above");
    let body: Vec<u8> = buf[8..len].to_vec();
    buf.drain(..len);
    match code {
        SSL_REQUEST_CODE => Ok(Some(Startup::Ssl)),
        GSSENC_REQUEST_CODE => Ok(Some(Startup::Gssenc)),
        CANCEL_REQUEST_CODE => Ok(Some(Startup::Cancel)),
        v if v >> 16 == 3 => {
            let params = parse_startup_params(&body)?;
            Ok(Some(Startup::Start { params }))
        }
        v => Err(FrameError::UnsupportedProtocol(v)),
    }
}

/// The startup body: NUL-terminated key/value pairs, then one final
/// NUL. Tolerates a missing terminator as long as pairs are complete.
fn parse_startup_params(body: &[u8]) -> Result<Vec<(String, String)>, FrameError> {
    let mut params = Vec::new();
    let mut at = 0usize;
    loop {
        if at >= body.len() || body[at] == 0 {
            return Ok(params);
        }
        let key = take_cstr(body, &mut at).ok_or(FrameError::Garbled)?;
        let val = take_cstr(body, &mut at).ok_or(FrameError::Garbled)?;
        params.push((key, val));
    }
}

fn take_cstr(buf: &[u8], at: &mut usize) -> Option<String> {
    let rest = buf.get(*at..)?;
    let nul = rest.iter().position(|&b| b == 0)?;
    let s = String::from_utf8_lossy(&rest[..nul]).into_owned();
    *at += nul + 1;
    Some(s)
}

/// Split one typed message off the front of `buf` → `(type, body)`.
/// `Ok(None)` means incomplete.
pub fn take_message(buf: &mut Vec<u8>) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let typ = buf[0];
    let Some(len) = read_u32(buf, 1) else {
        return Ok(None);
    };
    let len = len as usize;
    if !(4..=MAX_MESSAGE).contains(&len) {
        return Err(FrameError::Oversized);
    }
    if buf.len() < 1 + len {
        return Ok(None);
    }
    let body = buf[5..1 + len].to_vec();
    buf.drain(..1 + len);
    Ok(Some((typ, body)))
}

/// Read the NUL-terminated query string out of a `Query` body.
pub fn query_string(body: &[u8]) -> Option<String> {
    let nul = body.iter().position(|&b| b == 0)?;
    Some(String::from_utf8_lossy(&body[..nul]).into_owned())
}

// ----- backend message encoders ------------------------------------

fn push_msg(out: &mut Vec<u8>, typ: u8, body: impl FnOnce(&mut Vec<u8>)) {
    out.push(typ);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    body(out);
    let len = (out.len() - len_at) as u32;
    out[len_at..len_at + 4].copy_from_slice(&len.to_be_bytes());
}

fn push_cstr(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(s.as_bytes());
    out.push(0);
}

/// `AuthenticationOk` — trustful: any startup succeeds.
pub fn auth_ok(out: &mut Vec<u8>) {
    push_msg(out, b'R', |b| b.extend_from_slice(&0u32.to_be_bytes()));
}

/// `ParameterStatus(name, value)`.
pub fn parameter_status(out: &mut Vec<u8>, name: &str, value: &str) {
    push_msg(out, b'S', |b| {
        push_cstr(b, name);
        push_cstr(b, value);
    });
}

/// `BackendKeyData` — psql stores it for cancel requests; ours is a
/// dummy (cancel closes the connection either way).
pub fn backend_key_data(out: &mut Vec<u8>, pid: u32, secret: u32) {
    push_msg(out, b'K', |b| {
        b.extend_from_slice(&pid.to_be_bytes());
        b.extend_from_slice(&secret.to_be_bytes());
    });
}

/// `ReadyForQuery` with the transaction-status byte: `'I'` idle,
/// `'T'` in transaction, `'E'` in a failed transaction.
pub fn ready_for_query(out: &mut Vec<u8>, status: u8) {
    push_msg(out, b'Z', |b| b.push(status));
}

/// `RowDescription` for all-int8 text-format columns.
pub fn row_description(out: &mut Vec<u8>, cols: &[String]) {
    push_msg(out, b'T', |b| {
        b.extend_from_slice(&(cols.len() as u16).to_be_bytes());
        for name in cols {
            push_cstr(b, name);
            b.extend_from_slice(&0u32.to_be_bytes()); // table oid
            b.extend_from_slice(&0u16.to_be_bytes()); // column attnum
            b.extend_from_slice(&20u32.to_be_bytes()); // type oid: int8
            b.extend_from_slice(&8u16.to_be_bytes()); // type size
            b.extend_from_slice(&u32::MAX.to_be_bytes()); // atttypmod
            b.extend_from_slice(&0u16.to_be_bytes()); // format: text
        }
    });
}

/// `DataRow` with text-format values (`None` renders SQL NULL).
pub fn data_row(out: &mut Vec<u8>, vals: &[Option<String>]) {
    push_msg(out, b'D', |b| {
        b.extend_from_slice(&(vals.len() as u16).to_be_bytes());
        for v in vals {
            match v {
                None => b.extend_from_slice(&u32::MAX.to_be_bytes()),
                Some(s) => {
                    b.extend_from_slice(&(s.len() as u32).to_be_bytes());
                    b.extend_from_slice(s.as_bytes());
                }
            }
        }
    });
}

/// `CommandComplete` with its tag (`"INSERT 0 3"`, `"SELECT 7"`, ...).
pub fn command_complete(out: &mut Vec<u8>, tag: &str) {
    push_msg(out, b'C', |b| push_cstr(b, tag));
}

/// `EmptyQueryResponse` — the graceful answer to an empty query
/// string.
pub fn empty_query_response(out: &mut Vec<u8>) {
    push_msg(out, b'I', |_| {});
}

/// `ErrorResponse` with severity ERROR, the given SQLSTATE, and
/// message.
pub fn error_response(out: &mut Vec<u8>, sqlstate: &str, message: &str) {
    push_msg(out, b'E', |b| {
        b.push(b'S');
        push_cstr(b, "ERROR");
        b.push(b'V');
        push_cstr(b, "ERROR");
        b.push(b'C');
        push_cstr(b, sqlstate);
        b.push(b'M');
        push_cstr(b, message);
        b.push(0);
    });
}

/// `NoticeResponse` — used for online `CREATE INDEX` progress lines.
pub fn notice_response(out: &mut Vec<u8>, message: &str) {
    push_msg(out, b'N', |b| {
        b.push(b'S');
        push_cstr(b, "NOTICE");
        b.push(b'V');
        push_cstr(b, "NOTICE");
        b.push(b'C');
        push_cstr(b, "00000");
        b.push(b'M');
        push_cstr(b, message);
        b.push(0);
    });
}

// ----- frontend encoders (tests, bench drivers) --------------------

/// Encode a v3 `StartupMessage` (the bytes a client sends first).
#[must_use]
pub fn startup_message(params: &[(&str, &str)]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&PROTOCOL_V3.to_be_bytes());
    for (k, v) in params {
        push_cstr(&mut body, k);
        push_cstr(&mut body, v);
    }
    body.push(0);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&((4 + body.len()) as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encode a simple-protocol `Query` message.
#[must_use]
pub fn query_message(sql: &str) -> Vec<u8> {
    let mut out = Vec::new();
    push_msg(&mut out, b'Q', |b| push_cstr(b, sql));
    out
}

/// Encode a `Terminate` message.
#[must_use]
pub fn terminate_message() -> Vec<u8> {
    let mut out = Vec::new();
    push_msg(&mut out, b'X', |_| {});
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn startup_roundtrip() {
        let mut buf = startup_message(&[("user", "alice"), ("database", "oib")]);
        let got = take_startup(&mut buf).unwrap().unwrap();
        assert_eq!(
            got,
            Startup::Start {
                params: vec![
                    ("user".into(), "alice".into()),
                    ("database".into(), "oib".into()),
                ],
            }
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn ssl_probe_and_cancel() {
        for (code, want) in [
            (SSL_REQUEST_CODE, Startup::Ssl),
            (GSSENC_REQUEST_CODE, Startup::Gssenc),
            (CANCEL_REQUEST_CODE, Startup::Cancel),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&8u32.to_be_bytes());
            buf.extend_from_slice(&code.to_be_bytes());
            assert_eq!(take_startup(&mut buf).unwrap(), Some(want));
        }
    }

    #[test]
    fn startup_truncated_waits() {
        let full = startup_message(&[("user", "u")]);
        for cut in 0..full.len() {
            let mut buf = full[..cut].to_vec();
            assert_eq!(take_startup(&mut buf).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn startup_oversized_and_wrong_major_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_STARTUP as u32) + 1).to_be_bytes());
        assert_eq!(take_startup(&mut buf), Err(FrameError::Oversized));

        let mut buf = Vec::new();
        buf.extend_from_slice(&9u32.to_be_bytes());
        buf.extend_from_slice(&(2u32 << 16).to_be_bytes());
        buf.push(0);
        assert_eq!(
            take_startup(&mut buf),
            Err(FrameError::UnsupportedProtocol(2 << 16))
        );
    }

    #[test]
    fn message_roundtrip() {
        let mut buf = query_message("SELECT 1");
        buf.extend_from_slice(&terminate_message());
        let (typ, body) = take_message(&mut buf).unwrap().unwrap();
        assert_eq!(typ, b'Q');
        assert_eq!(query_string(&body).unwrap(), "SELECT 1");
        let (typ, body) = take_message(&mut buf).unwrap().unwrap();
        assert_eq!((typ, body.len()), (b'X', 0));
        assert_eq!(take_message(&mut buf).unwrap(), None);
    }

    #[test]
    fn message_oversized_refused() {
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&((MAX_MESSAGE as u32) + 1).to_be_bytes());
        assert_eq!(take_message(&mut buf), Err(FrameError::Oversized));
        // A length below the 4-byte minimum is equally unrecoverable.
        let mut buf = vec![b'Q'];
        buf.extend_from_slice(&3u32.to_be_bytes());
        assert_eq!(take_message(&mut buf), Err(FrameError::Oversized));
    }

    #[test]
    fn error_response_fields_parse() {
        let mut out = Vec::new();
        error_response(&mut out, "42601", "syntax error");
        assert_eq!(out[0], b'E');
        let s = String::from_utf8_lossy(&out);
        assert!(s.contains("42601"));
        assert!(s.contains("syntax error"));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Arbitrary bytes never panic either splitter; they parse,
        /// wait, or fail cleanly.
        #[test]
        fn splitters_are_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let mut b1 = bytes.clone();
            let _ = take_startup(&mut b1);
            let mut b2 = bytes;
            let _ = take_message(&mut b2);
        }

        /// Every prefix of a valid message stream is "incomplete",
        /// never an error.
        #[test]
        fn prefixes_wait(sql in ".{0,40}", cut in 0usize..64) {
            let full = query_message(&sql);
            let cut = cut.min(full.len());
            let mut buf = full[..cut].to_vec();
            if cut < full.len() {
                prop_assert_eq!(take_message(&mut buf).unwrap(), None);
            } else {
                prop_assert!(take_message(&mut buf).unwrap().is_some());
            }
        }

        /// Query strings round-trip through the frontend encoder and
        /// backend splitter.
        #[test]
        fn query_roundtrip(sql in "[^\u{0}]{0,200}") {
            let mut buf = query_message(&sql);
            let (typ, body) = take_message(&mut buf).unwrap().unwrap();
            prop_assert_eq!(typ, b'Q');
            prop_assert_eq!(query_string(&body).unwrap(), sql);
        }
    }
}
