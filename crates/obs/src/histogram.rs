//! Lock-free log-linear histogram.
//!
//! Values are bucketed HdrHistogram-style: 16 linear sub-buckets per
//! power of two, so every bucket's width is at most 1/16 of its lower
//! bound — quantile estimates carry a bounded ≤ 6.25% relative error
//! (values below 16 are exact). The record path is three relaxed
//! `fetch_add`s and one `fetch_max`; snapshots copy the bucket array
//! and are mergeable, so one logical metric can be fed by several
//! physically separate histograms (one per latch family, per shard, …)
//! and still report a single distribution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two (power of two itself).
const SUB: usize = 16;
/// `log2(SUB)`.
const LOG_SUB: u32 = 4;

/// Total buckets needed to cover the full `u64` range:
/// `(63 - LOG_SUB) * SUB + (2 * SUB - 1) + 1`.
pub const HISTOGRAM_BUCKETS: usize = (63 - LOG_SUB as usize) * SUB + 2 * SUB;

/// Bucket index of `v`. Exact for `v < SUB`; elsewhere the value's
/// top `LOG_SUB + 1` significant bits pick the bucket.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let h = 63 - v.leading_zeros(); // 2^h <= v
        let g = h - LOG_SUB; // sub-bucket width is 2^g
        (g as usize) * SUB + (v >> g) as usize
    }
}

/// Inclusive lower bound of bucket `idx` (inverse of [`bucket_of`]).
fn bucket_lower(idx: usize) -> u64 {
    if idx < 2 * SUB {
        idx as u64
    } else {
        let g = idx / SUB - 1;
        ((idx - g * SUB) as u64) << g
    }
}

/// Inclusive upper bound of bucket `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// A concurrent log-linear histogram of `u64` observations
/// (microseconds, depths, byte counts, …).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free; a no-op while recording is
    /// globally disabled (see [`crate::set_recording`]).
    pub fn record(&self, v: u64) {
        if !crate::recording_enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state; merge several to report
/// one logical distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (wrapping on overflow, like the counters).
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// Snapshot with nothing recorded.
    #[must_use]
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimate of the `q`-quantile (`0.0 < q <= 1.0`): the upper
    /// bound of the bucket holding the rank-`ceil(q·count)`
    /// observation, clamped to the observed maximum — so the estimate
    /// is exact below 16 and within the bucket's ≤ 1/16 relative
    /// width elsewhere. Returns 0 on an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observation (0 on an empty snapshot).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket error bound the quantile estimate of `v` carries:
    /// the inclusive `[lower, upper]` range of `v`'s bucket.
    #[must_use]
    pub fn bucket_bounds(v: u64) -> (u64, u64) {
        let idx = bucket_of(v);
        (bucket_lower(idx), bucket_upper(idx))
    }

    /// Cumulative distribution as `(upper_bound, cumulative_count)`
    /// pairs, one per *occupied* bucket — the exact OpenMetrics `le`
    /// series for this log-linear histogram (empty buckets add no
    /// information to a cumulative series, so they are elided and the
    /// exposition stays compact without losing precision). The final
    /// pair's count equals [`count`](HistogramSnapshot::count); an
    /// exporter still appends its own `+Inf` bucket.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                seen += n;
                out.push((bucket_upper(idx), seen));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn bucket_fn_is_monotone_and_inverse_consistent() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < 1 << 20 {
            let idx = bucket_of(v);
            assert!(idx >= prev, "bucket_of not monotone at {v}");
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx), "{v}");
            prev = idx;
            v += 1 + v / 7;
        }
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn buckets_tile_the_range_exactly() {
        for idx in 1..HISTOGRAM_BUCKETS {
            assert_eq!(
                bucket_upper(idx - 1).wrapping_add(1),
                bucket_lower(idx),
                "gap/overlap at bucket {idx}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.1f64, 0.5, 0.9, 1.0] {
            let rank = ((q * 16.0).ceil() as u64).clamp(1, 16);
            assert_eq!(s.quantile(q), rank - 1, "q={q}");
        }
    }

    #[test]
    fn quantiles_and_max_on_known_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // p50's true value is 500; bucket error is <= 1/16.
        let p50 = s.p50();
        assert!((469..=532).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 0.01);
    }

    #[test]
    fn snapshots_merge() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1000);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 200);
        assert_eq!(s.max, 1099);
        assert!(s.p50() < 1000);
        assert!(s.p99() >= 1000);
    }

    /// Satellite: 8 threads × 100k records — the total count, sum and
    /// per-bucket tallies are conserved under concurrency.
    #[test]
    fn concurrent_recorders_conserve_counts() {
        let h = Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER: u64 = 100_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    // Deterministic per-thread stream spanning many
                    // buckets (xorshift).
                    let mut x = t * 2_654_435_761 + 1;
                    let mut local_sum = 0u64;
                    for _ in 0..PER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let v = x % 1_000_003;
                        local_sum = local_sum.wrapping_add(v);
                        h.record(v);
                    }
                    local_sum
                })
            })
            .collect();
        let expect_sum: u64 = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold(0u64, u64::wrapping_add);
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER);
        assert_eq!(s.sum, expect_sum);
        assert_eq!(s.buckets.iter().sum::<u64>(), THREADS * PER);
        assert!(s.max < 1_000_003);
    }

    #[test]
    fn cumulative_elides_empty_buckets_and_sums_to_count() {
        let h = Histogram::new();
        for v in [3u64, 3, 100, 5000, 5000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        let c = s.cumulative();
        assert_eq!(c.len(), 3); // three occupied buckets
                                // Monotone uppers, monotone cumulative counts, total = count.
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(c.last().unwrap().1, s.count);
        // Each observed value is <= the upper of the pair it lands in.
        assert!(c[0].0 >= 3 && c[0].1 == 2);
        assert!(HistogramSnapshot::empty().cumulative().is_empty());
    }

    proptest! {
        /// Satellite: for arbitrary value streams, every quantile
        /// estimate stays inside the log-linear bucket of the *true*
        /// quantile value — the advertised ≤ 1/16 relative error.
        #[test]
        fn prop_quantile_error_is_bucket_bounded(
            mut values in prop::collection::vec(any::<u64>(), 1..400),
            qs in prop::collection::vec(1u32..=100, 1..6)
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            values.sort_unstable();
            for q100 in qs {
                let q = f64::from(q100) / 100.0;
                let rank = ((q * values.len() as f64).ceil() as usize)
                    .clamp(1, values.len());
                let truth = values[rank - 1];
                let est = s.quantile(q);
                let (lo, hi) = HistogramSnapshot::bucket_bounds(truth);
                prop_assert!(
                    est >= lo && est <= hi,
                    "q={q} truth={truth} est={est} bounds=({lo},{hi})"
                );
            }
        }
    }
}
