//! Engine-wide observability: a metrics registry with log-linear
//! histograms, gauges and counters behind one namespace scheme, plus a
//! span-based trace ring buffer.
//!
//! The 1992 paper argues in *pathlengths* and the workspace's
//! `common::stats` counters reproduce those arguments, but counters
//! cannot answer the distributional questions a serving system raises:
//! the tail of the group-flush stall, the per-opcode request latency
//! under admission control, the side-file drain *lag* during a live SF
//! build. This crate supplies the missing substrate:
//!
//! * [`Histogram`] — a lock-free log-linear histogram (atomic bucket
//!   increments, ≤ 1/16 relative bucket error) with mergeable
//!   [`HistogramSnapshot`]s and p50/p90/p99/max extraction;
//! * [`Registry`] — named counters, gauge callbacks and histograms
//!   under one dotted namespace (`wal.flush_us`, `cache.hit`,
//!   `build.drain_lag`, `server.req_us.<opcode>`, …). Subsystems keep
//!   owning their stats structs; the registry *adopts* them, and
//!   several structs adopted under one name merge at snapshot time
//!   (e.g. every latch family's wait-time histogram appears as one
//!   `latch.wait_us`);
//! * [`TraceSink`] — a fixed-capacity, per-thread, drop-oldest ring of
//!   [`TraceEvent`]s recording build-phase transitions and slow
//!   requests, dumpable as JSON-lines.
//!
//! Recording is globally gateable ([`set_recording`]) so the E17
//! experiment can measure the overhead of the record path itself.

#![warn(missing_docs)]

mod ctx;
mod histogram;
mod registry;
mod trace;

pub use ctx::{
    ctx_for, current_ctx, install_ctx, new_trace_id, next_span_id, set_trace_sampling, splitmix64,
    trace_sampled, trace_sampling, CtxGuard, TraceCtx,
};
pub use histogram::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricsSnapshot, Registry};
pub use trace::{render_span_tree, SpanGuard, TraceEvent, TraceSink};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global switch for every record path in this crate (histograms and
/// trace events; registry gauge *reads* are unaffected). On by
/// default; the E17 overhead experiment toggles it to measure the
/// cost of recording against an otherwise identical run.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enable or disable metric/trace recording process-wide.
pub fn set_recording(enabled: bool) {
    RECORDING.store(enabled, Ordering::Release);
}

/// Whether record paths are currently live.
#[must_use]
pub fn recording_enabled() -> bool {
    RECORDING.load(Ordering::Acquire)
}
