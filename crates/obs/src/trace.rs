//! Span-based trace ring buffer.
//!
//! A [`TraceSink`] is a fixed-capacity, drop-oldest ring of
//! [`TraceEvent`]s, sharded so recording threads rarely contend on one
//! lock: each thread is pinned round-robin to one of [`SHARDS`] rings
//! (the same home-stripe scheme `common::stats::StripedCounter` uses).
//! Capacity is per shard, so the sink as a whole retains up to
//! `SHARDS × capacity` events, evicting the oldest *within each shard*
//! when full. Events carry a global sequence number so a merged dump
//! reads in record order.
//!
//! Events are causal: when a [`TraceCtx`](crate::TraceCtx) is
//! installed on the recording thread, every event inherits its trace
//! id and links to the innermost open span as its parent, and spans
//! opened via [`TraceSink::span`] install themselves as the current
//! parent for their scope. Unsampled traces record nothing (the
//! context still propagates). Events recorded with no context remain
//! plain ring entries with zero ids, exactly as before.
//!
//! Two producers exist: explicit [`TraceSink::event`] calls (build
//! phase transitions) and [`TraceSink::span`] guards that measure a
//! scoped duration and record on drop (slow requests — the caller
//! decides the threshold via [`SpanGuard::commit_if_over`]).

use crate::ctx::{current_ctx, install_ctx, next_span_id, CtxGuard, TraceCtx};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Ring shards; recording threads are pinned round-robin.
const SHARDS: usize = 8;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (monotone across shards).
    pub seq: u64,
    /// Microseconds since the sink was created.
    pub at_us: u64,
    /// Trace this event belongs to (0 = recorded outside any trace).
    pub trace_id: u64,
    /// This event's own span id (0 when recorded outside any trace).
    pub span_id: u64,
    /// Span id of the enclosing span (0 = root of its trace).
    pub parent_id: u64,
    /// Event kind, e.g. `"build.phase"` or `"server.slow_request"`.
    pub kind: &'static str,
    /// Instance label, e.g. `"sf.drain.pass"` or an opcode name.
    pub label: String,
    /// Duration of the span in microseconds (0 for point events).
    pub dur_us: u64,
    /// Free-form numeric detail (pass number, backlog, frame bytes).
    pub detail: u64,
}

impl TraceEvent {
    /// The event as one JSON object (used by the JSON-lines dump).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_us\":{},\"trace\":{},\"span\":{},\"parent\":{},\"kind\":\"{}\",\"label\":\"{}\",\"dur_us\":{},\"detail\":{}}}",
            self.seq,
            self.at_us,
            self.trace_id,
            self.span_id,
            self.parent_id,
            json_escape(self.kind),
            json_escape(&self.label),
            self.dur_us,
            self.detail
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-capacity, sharded, drop-oldest ring of [`TraceEvent`]s.
pub struct TraceSink {
    shards: [Mutex<VecDeque<TraceEvent>>; SHARDS],
    capacity: usize,
    seq: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity)
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard, assigned round-robin on first use.
    static HOME_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl TraceSink {
    /// Default per-shard event capacity.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Sink retaining up to `capacity` events per shard (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Record a point event (no duration). A no-op while recording is
    /// globally disabled, and for unsampled traces. Under an installed
    /// context the event gets its own span id and links to the
    /// innermost open span.
    pub fn event(&self, kind: &'static str, label: impl Into<String>, detail: u64) {
        self.push(kind, label.into(), 0, detail);
    }

    /// Record a completed span whose duration the caller measured
    /// itself (e.g. a drop-guard that cannot consume a [`SpanGuard`]).
    pub fn span_event(
        &self,
        kind: &'static str,
        label: impl Into<String>,
        dur_us: u64,
        detail: u64,
    ) {
        self.push(kind, label.into(), dur_us, detail);
    }

    /// Start a span; the guard records `kind`/`label` with the
    /// measured duration when committed (or dropped, for
    /// [`SpanGuard::commit`]-style unconditional spans). While a
    /// trace context is installed, the span allocates its own span id
    /// and becomes the current parent for its scope — events and
    /// child spans recorded inside link to it.
    #[must_use]
    pub fn span<'a>(&'a self, kind: &'static str, label: impl Into<String>) -> SpanGuard<'a> {
        let (ids, scope) = match current_ctx() {
            Some(c) if c.sampled => {
                let own = next_span_id();
                let scope = install_ctx(TraceCtx {
                    trace_id: c.trace_id,
                    span_id: own,
                    sampled: true,
                });
                (Some((c.trace_id, own, c.span_id)), Some(scope))
            }
            // Unsampled trace: propagate nothing, record nothing.
            Some(_) => (None, None),
            None => (Some((0, 0, 0)), None),
        };
        SpanGuard {
            sink: self,
            kind,
            label: label.into(),
            detail: 0,
            started: Instant::now(),
            armed: ids.is_some(),
            ids: ids.unwrap_or((0, 0, 0)),
            _scope: scope,
        }
    }

    fn push(&self, kind: &'static str, label: String, dur_us: u64, detail: u64) {
        let (trace_id, span_id, parent_id) = match current_ctx() {
            Some(c) if !c.sampled => return,
            Some(c) => (c.trace_id, next_span_id(), c.span_id),
            None => (0, 0, 0),
        };
        self.push_raw(kind, label, dur_us, detail, (trace_id, span_id, parent_id));
    }

    fn push_raw(
        &self,
        kind: &'static str,
        label: String,
        dur_us: u64,
        detail: u64,
        (trace_id, span_id, parent_id): (u64, u64, u64),
    ) {
        if !crate::recording_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let ev = TraceEvent {
            seq,
            at_us,
            trace_id,
            span_id,
            parent_id,
            kind,
            label,
            dur_us,
            detail,
        };
        let mut ring = self.shards[HOME_SHARD.with(|s| *s)].lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// All retained events, merged across shards in record order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events_filtered(0, 0)
    }

    /// Retained events matching the filter, merged in record order.
    /// `trace_id == 0` matches every trace (including untraced
    /// events); `since_seq` drops events numbered below it.
    #[must_use]
    pub fn events_filtered(&self, trace_id: u64, since_seq: u64) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(
                shard
                    .lock()
                    .iter()
                    .filter(|e| e.seq >= since_seq && (trace_id == 0 || e.trace_id == trace_id))
                    .cloned(),
            );
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Retained events as JSON-lines (one object per line).
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        self.dump_jsonl_filtered(0, 0)
    }

    /// Filtered events ([`events_filtered`](Self::events_filtered)
    /// semantics) as JSON-lines.
    #[must_use]
    pub fn dump_jsonl_filtered(&self, trace_id: u64, since_seq: u64) -> String {
        let mut out = String::new();
        for ev in self.events_filtered(trace_id, since_seq) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Drop every retained event (sequence numbers keep advancing).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Render events as an indented span forest, children under parents in
/// record order. Events whose parent is absent (evicted from the ring,
/// or a remote continuation whose parent span lives in another
/// process) become roots — a cross-process trace renders as a forest
/// with the follower's apply spans as sibling roots of the primary's
/// request span.
#[must_use]
pub fn render_span_tree(events: &[TraceEvent]) -> String {
    use std::collections::{HashMap, HashSet};
    // Map each present span id to its event index (span_id 0 events
    // are untraced or pre-context; they render as roots).
    let mut by_span: HashMap<u64, usize> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.span_id != 0 {
            by_span.insert(e.span_id, i);
        }
    }
    let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match by_span.get(&e.parent_id) {
            Some(&p) if e.parent_id != 0 && p != i => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    let mut out = String::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        if !seen.insert(i) {
            continue; // defensive: a parent cycle can't recurse
        }
        let e = &events[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} {} trace={:#x} span={} dur_us={} detail={}\n",
            e.kind, e.label, e.trace_id, e.span_id, e.dur_us, e.detail
        ));
        if let Some(kids) = children.get(&i) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// Measures a scope's duration for a [`TraceSink`]; records on
/// [`commit`](SpanGuard::commit) or
/// [`commit_if_over`](SpanGuard::commit_if_over). Dropping without
/// committing records nothing, so speculative spans on hot paths cost
/// one `Instant::now()` when they turn out fast. While alive, the
/// guard is the current parent span for its thread (restored on
/// drop), so it must be dropped on the thread that created it.
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    kind: &'static str,
    label: String,
    detail: u64,
    started: Instant,
    armed: bool,
    /// `(trace_id, own span id, parent span id)` captured at open.
    ids: (u64, u64, u64),
    /// Keeps this span installed as the thread's current parent;
    /// dropping the guard restores the enclosing context.
    _scope: Option<CtxGuard>,
}

impl SpanGuard<'_> {
    /// Attach a numeric detail (pass number, byte count, …).
    #[must_use]
    pub fn with_detail(mut self, detail: u64) -> Self {
        self.detail = detail;
        self
    }

    /// This span's id (0 when recorded outside any sampled trace).
    #[must_use]
    pub fn span_id(&self) -> u64 {
        self.ids.1
    }

    /// Elapsed time since the span started.
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Record the span unconditionally and return its duration.
    pub fn commit(mut self) -> std::time::Duration {
        let d = self.started.elapsed();
        self.record(d);
        d
    }

    /// Record the span only if it ran at least `threshold_us`
    /// microseconds; returns the duration either way.
    pub fn commit_if_over(mut self, threshold_us: u64) -> std::time::Duration {
        let d = self.started.elapsed();
        if d.as_micros() >= u128::from(threshold_us) {
            self.record(d);
        } else {
            self.armed = false;
        }
        d
    }

    fn record(&mut self, d: std::time::Duration) {
        if self.armed {
            self.armed = false;
            let dur_us = d.as_micros().min(u128::from(u64::MAX)) as u64;
            self.sink.push_raw(
                self.kind,
                std::mem::take(&mut self.label),
                dur_us,
                self.detail,
                self.ids,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{ctx_for, install_ctx, new_trace_id, TEST_SAMPLING_LOCK};

    /// A root context that is always sampled, regardless of whatever
    /// global rate a concurrently running test may have set.
    fn test_ctx() -> TraceCtx {
        TraceCtx {
            trace_id: new_trace_id(),
            span_id: 0,
            sampled: true,
        }
    }

    #[test]
    fn events_come_back_in_record_order() {
        let sink = TraceSink::new(16);
        for i in 0..5 {
            sink.event("build.phase", format!("phase-{i}"), i);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 5);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.label, format!("phase-{i}"));
            assert_eq!(ev.detail, i as u64);
            assert_eq!(ev.dur_us, 0);
            assert_eq!(ev.trace_id, 0);
            assert_eq!(ev.span_id, 0);
        }
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let sink = TraceSink::new(3);
        // Single thread → single shard → exact drop-oldest order.
        for i in 0..10u64 {
            sink.event("k", "e", i);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        let details: Vec<u64> = evs.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![7, 8, 9]);
    }

    #[test]
    fn span_commit_records_duration() {
        let sink = TraceSink::new(8);
        let span = sink.span("server.slow_request", "Insert").with_detail(7);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d = span.commit();
        assert!(d.as_micros() >= 2000);
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "server.slow_request");
        assert_eq!(evs[0].label, "Insert");
        assert_eq!(evs[0].detail, 7);
        assert!(evs[0].dur_us >= 2000);
    }

    #[test]
    fn fast_spans_below_threshold_record_nothing() {
        let sink = TraceSink::new(8);
        let span = sink.span("server.slow_request", "Ping");
        let _ = span.commit_if_over(10_000_000);
        assert!(sink.events().is_empty());
        // And an uncommitted drop records nothing either.
        let _ = sink.span("server.slow_request", "Ping");
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_dump_escapes_and_is_line_per_event() {
        let sink = TraceSink::new(8);
        sink.event("k", "quote\"back\\slash\n", 1);
        sink.event("k", "plain", 2);
        let dump = sink.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("quote\\\"back\\\\slash\\u000a"));
        assert!(lines[1].contains("\"detail\":2"));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    }

    #[test]
    fn concurrent_recorders_interleave_without_loss() {
        let sink = std::sync::Arc::new(TraceSink::new(10_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        sink.event("k", "e", t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 2000);
        // seq strictly increasing in merged output.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn events_under_a_context_inherit_trace_and_parent() {
        let sink = TraceSink::new(32);
        let ctx = test_ctx();
        let _g = install_ctx(ctx);
        let span = sink.span("wire.recv", "CreateIndex");
        let parent = span.span_id();
        assert_ne!(parent, 0);
        sink.event("build.phase", "scan", 1);
        let _ = span.commit();
        let evs = sink.events_filtered(ctx.trace_id, 0);
        assert_eq!(evs.len(), 2);
        let phase = evs.iter().find(|e| e.kind == "build.phase").unwrap();
        assert_eq!(phase.trace_id, ctx.trace_id);
        assert_eq!(phase.parent_id, parent);
        assert_ne!(phase.span_id, 0);
        let recv = evs.iter().find(|e| e.kind == "wire.recv").unwrap();
        assert_eq!(recv.span_id, parent);
        assert_eq!(recv.parent_id, 0); // root of its trace
    }

    #[test]
    fn nested_spans_link_and_restore_parent() {
        let sink = TraceSink::new(32);
        let ctx = test_ctx();
        let _g = install_ctx(ctx);
        let outer = sink.span("a", "outer");
        let outer_id = outer.span_id();
        let inner = sink.span("b", "inner");
        let inner_id = inner.span_id();
        let _ = inner.commit();
        // Inner's guard dropped → outer is the parent again.
        sink.event("c", "sibling", 0);
        let _ = outer.commit();
        let evs = sink.events_filtered(ctx.trace_id, 0);
        let find = |k: &str| evs.iter().find(|e| e.kind == k).unwrap();
        assert_eq!(find("b").parent_id, outer_id);
        assert_eq!(find("b").span_id, inner_id);
        assert_eq!(find("c").parent_id, outer_id);
        assert_eq!(find("a").parent_id, 0);
    }

    #[test]
    fn unsampled_traces_record_nothing_but_sampled_ones_do() {
        let _lock = TEST_SAMPLING_LOCK.lock().unwrap();
        let sink = TraceSink::new(64);
        crate::set_trace_sampling(2);
        // Find one kept and one dropped id at this rate; ctx_for then
        // applies the same deterministic verdict.
        let (keep_id, drop_id) = loop {
            let a = new_trace_id();
            let b = new_trace_id();
            match (crate::trace_sampled(a), crate::trace_sampled(b)) {
                (true, false) => break (a, b),
                (false, true) => break (b, a),
                _ => {}
            }
        };
        {
            let _g = install_ctx(ctx_for(drop_id));
            sink.event("k", "dropped", 1);
            let s = sink.span("k", "dropped-span");
            let _ = s.commit();
        }
        {
            let _g = install_ctx(ctx_for(keep_id));
            sink.event("k", "kept", 1);
        }
        crate::set_trace_sampling(0);
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].label, "kept");
        assert_eq!(evs[0].trace_id, keep_id);
    }

    #[test]
    fn filtered_dump_honours_trace_and_since() {
        let sink = TraceSink::new(64);
        let a = test_ctx();
        let b = test_ctx();
        {
            let _g = install_ctx(a);
            sink.event("k", "a1", 0);
        }
        {
            let _g = install_ctx(b);
            sink.event("k", "b1", 0);
        }
        {
            let _g = install_ctx(a);
            sink.event("k", "a2", 0);
        }
        let only_a = sink.events_filtered(a.trace_id, 0);
        assert_eq!(only_a.len(), 2);
        assert!(only_a.iter().all(|e| e.trace_id == a.trace_id));
        let since = sink.events_filtered(0, 2);
        assert_eq!(since.len(), 1);
        assert_eq!(since[0].label, "a2");
        let dump = sink.dump_jsonl_filtered(b.trace_id, 0);
        assert_eq!(dump.lines().count(), 1);
        assert!(dump.contains("\"label\":\"b1\""));
    }

    #[test]
    fn span_tree_renders_forest_with_orphans_as_roots() {
        let sink = TraceSink::new(64);
        let ctx = test_ctx();
        {
            let _g = install_ctx(ctx);
            let outer = sink.span("wire.recv", "CreateIndex");
            sink.event("build.phase", "scan", 1);
            let inner = sink.span("wal.flush", "group");
            let _ = inner.commit();
            let _ = outer.commit();
        }
        // A remote continuation: same trace, parent span unknown here.
        {
            let _g = install_ctx(ctx);
            sink.event("repl.apply", "frame", 3);
        }
        let evs = sink.events_filtered(ctx.trace_id, 0);
        let tree = render_span_tree(&evs);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4);
        let depth = |l: &str| l.len() - l.trim_start().len();
        let at = |k: &str| lines.iter().find(|l| l.contains(k)).copied().unwrap();
        assert_eq!(depth(at("wire.recv")), 0);
        assert_eq!(depth(at("build.phase")), 2);
        assert_eq!(depth(at("wal.flush")), 2);
        // repl.apply's parent is the root ctx (span 0) → sibling root.
        assert_eq!(depth(at("repl.apply")), 0);
    }

    #[test]
    fn parent_child_links_survive_ring_wrap() {
        // Satellite: after the ring wraps, surviving children whose
        // parent was evicted render as roots and keep their ids.
        let sink = TraceSink::new(4);
        let ctx = test_ctx();
        let _g = install_ctx(ctx);
        let outer = sink.span("outer", "o");
        let outer_id = outer.span_id();
        for i in 0..16u64 {
            sink.event("child", format!("c{i}"), i);
        }
        let _ = outer.commit();
        let evs = sink.events_filtered(ctx.trace_id, 0);
        // Everything retained still carries the right parent id even
        // though early siblings were evicted.
        for e in evs.iter().filter(|e| e.kind == "child") {
            assert_eq!(e.parent_id, outer_id);
            assert_eq!(e.trace_id, ctx.trace_id);
        }
        let tree = render_span_tree(&evs);
        assert!(tree.contains("outer"));
        // The outer span survived, so children nest under it.
        assert!(tree.lines().any(|l| l.starts_with("  child")));
    }

    #[test]
    fn concurrent_traced_writers_keep_link_integrity() {
        // Satellite: many threads, each its own trace, small rings →
        // constant wrap. Every surviving event must still belong to
        // its writer's trace and point at that writer's root span.
        let sink = std::sync::Arc::new(TraceSink::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    let ctx = test_ctx();
                    let _g = install_ctx(ctx);
                    let root = sink.span("root", "r");
                    let root_id = root.span_id();
                    for i in 0..200u64 {
                        sink.event("w", "e", i);
                    }
                    let _ = root.commit();
                    (ctx.trace_id, root_id)
                })
            })
            .collect();
        let idents: Vec<(u64, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let evs = sink.events();
        assert!(!evs.is_empty());
        for e in &evs {
            let (trace_id, root_id) = *idents
                .iter()
                .find(|(t, _)| *t == e.trace_id)
                .expect("event from unknown trace");
            if e.kind == "w" {
                assert_eq!(e.parent_id, root_id);
            }
            assert_eq!(e.trace_id, trace_id);
        }
        // seq still strictly increasing in merged output.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
