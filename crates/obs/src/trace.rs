//! Span-based trace ring buffer.
//!
//! A [`TraceSink`] is a fixed-capacity, drop-oldest ring of
//! [`TraceEvent`]s, sharded so recording threads rarely contend on one
//! lock: each thread is pinned round-robin to one of [`SHARDS`] rings
//! (the same home-stripe scheme `common::stats::StripedCounter` uses).
//! Capacity is per shard, so the sink as a whole retains up to
//! `SHARDS × capacity` events, evicting the oldest *within each shard*
//! when full. Events carry a global sequence number so a merged dump
//! reads in record order.
//!
//! Two producers exist: explicit [`TraceSink::event`] calls (build
//! phase transitions) and [`TraceSink::span`] guards that measure a
//! scoped duration and record on drop (slow requests — the caller
//! decides the threshold via [`SpanGuard::commit_if_over`]).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Ring shards; recording threads are pinned round-robin.
const SHARDS: usize = 8;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (monotone across shards).
    pub seq: u64,
    /// Microseconds since the sink was created.
    pub at_us: u64,
    /// Event kind, e.g. `"build.phase"` or `"server.slow_request"`.
    pub kind: &'static str,
    /// Instance label, e.g. `"sf.drain.pass"` or an opcode name.
    pub label: String,
    /// Duration of the span in microseconds (0 for point events).
    pub dur_us: u64,
    /// Free-form numeric detail (pass number, backlog, frame bytes).
    pub detail: u64,
}

impl TraceEvent {
    /// The event as one JSON object (used by the JSON-lines dump).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"label\":\"{}\",\"dur_us\":{},\"detail\":{}}}",
            self.seq,
            self.at_us,
            json_escape(self.kind),
            json_escape(&self.label),
            self.dur_us,
            self.detail
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-capacity, sharded, drop-oldest ring of [`TraceEvent`]s.
pub struct TraceSink {
    shards: [Mutex<VecDeque<TraceEvent>>; SHARDS],
    capacity: usize,
    seq: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.capacity)
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard, assigned round-robin on first use.
    static HOME_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl TraceSink {
    /// Default per-shard event capacity.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Sink retaining up to `capacity` events per shard (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Record a point event (no duration). A no-op while recording is
    /// globally disabled.
    pub fn event(&self, kind: &'static str, label: impl Into<String>, detail: u64) {
        self.push(kind, label.into(), 0, detail);
    }

    /// Record a completed span whose duration the caller measured
    /// itself (e.g. a drop-guard that cannot consume a [`SpanGuard`]).
    pub fn span_event(
        &self,
        kind: &'static str,
        label: impl Into<String>,
        dur_us: u64,
        detail: u64,
    ) {
        self.push(kind, label.into(), dur_us, detail);
    }

    /// Start a span; the guard records `kind`/`label` with the
    /// measured duration when committed (or dropped, for
    /// [`SpanGuard::commit`]-style unconditional spans).
    #[must_use]
    pub fn span<'a>(&'a self, kind: &'static str, label: impl Into<String>) -> SpanGuard<'a> {
        SpanGuard {
            sink: self,
            kind,
            label: label.into(),
            detail: 0,
            started: Instant::now(),
            armed: true,
        }
    }

    fn push(&self, kind: &'static str, label: String, dur_us: u64, detail: u64) {
        if !crate::recording_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let at_us = self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let ev = TraceEvent {
            seq,
            at_us,
            kind,
            label,
            dur_us,
            detail,
        };
        let mut ring = self.shards[HOME_SHARD.with(|s| *s)].lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// All retained events, merged across shards in record order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Retained events as JSON-lines (one object per line).
    #[must_use]
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Drop every retained event (sequence numbers keep advancing).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Measures a scope's duration for a [`TraceSink`]; records on
/// [`commit`](SpanGuard::commit) or
/// [`commit_if_over`](SpanGuard::commit_if_over). Dropping without
/// committing records nothing, so speculative spans on hot paths cost
/// one `Instant::now()` when they turn out fast.
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    kind: &'static str,
    label: String,
    detail: u64,
    started: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Attach a numeric detail (pass number, byte count, …).
    #[must_use]
    pub fn with_detail(mut self, detail: u64) -> Self {
        self.detail = detail;
        self
    }

    /// Elapsed time since the span started.
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Record the span unconditionally and return its duration.
    pub fn commit(mut self) -> std::time::Duration {
        let d = self.started.elapsed();
        self.record(d);
        d
    }

    /// Record the span only if it ran at least `threshold_us`
    /// microseconds; returns the duration either way.
    pub fn commit_if_over(mut self, threshold_us: u64) -> std::time::Duration {
        let d = self.started.elapsed();
        if d.as_micros() >= u128::from(threshold_us) {
            self.record(d);
        } else {
            self.armed = false;
        }
        d
    }

    fn record(&mut self, d: std::time::Duration) {
        if self.armed {
            self.armed = false;
            let dur_us = d.as_micros().min(u128::from(u64::MAX)) as u64;
            self.sink.push(
                self.kind,
                std::mem::take(&mut self.label),
                dur_us,
                self.detail,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_record_order() {
        let sink = TraceSink::new(16);
        for i in 0..5 {
            sink.event("build.phase", format!("phase-{i}"), i);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 5);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.label, format!("phase-{i}"));
            assert_eq!(ev.detail, i as u64);
            assert_eq!(ev.dur_us, 0);
        }
    }

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let sink = TraceSink::new(3);
        // Single thread → single shard → exact drop-oldest order.
        for i in 0..10u64 {
            sink.event("k", "e", i);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        let details: Vec<u64> = evs.iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![7, 8, 9]);
    }

    #[test]
    fn span_commit_records_duration() {
        let sink = TraceSink::new(8);
        let span = sink.span("server.slow_request", "Insert").with_detail(7);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d = span.commit();
        assert!(d.as_micros() >= 2000);
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "server.slow_request");
        assert_eq!(evs[0].label, "Insert");
        assert_eq!(evs[0].detail, 7);
        assert!(evs[0].dur_us >= 2000);
    }

    #[test]
    fn fast_spans_below_threshold_record_nothing() {
        let sink = TraceSink::new(8);
        let span = sink.span("server.slow_request", "Ping");
        let _ = span.commit_if_over(10_000_000);
        assert!(sink.events().is_empty());
        // And an uncommitted drop records nothing either.
        let _ = sink.span("server.slow_request", "Ping");
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_dump_escapes_and_is_line_per_event() {
        let sink = TraceSink::new(8);
        sink.event("k", "quote\"back\\slash\n", 1);
        sink.event("k", "plain", 2);
        let dump = sink.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("quote\\\"back\\\\slash\\u000a"));
        assert!(lines[1].contains("\"detail\":2"));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    }

    #[test]
    fn concurrent_recorders_interleave_without_loss() {
        let sink = std::sync::Arc::new(TraceSink::new(10_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        sink.event("k", "e", t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 2000);
        // seq strictly increasing in merged output.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
