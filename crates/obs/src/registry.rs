//! The metrics registry: one dotted namespace over counters, gauge
//! callbacks and histograms.
//!
//! Registration takes a lock once and hands back an `Arc` handle;
//! every subsequent record is pure atomics on the handle, so the
//! registry itself is never on a hot path. Existing stats structs are
//! *adopted* rather than rewritten: a gauge is a closure reading
//! whatever counter already counts the event, and a histogram owned by
//! a subsystem (`WalStats::flush_us`, a latch family's `wait_us`) is
//! adopted under its public name. Several histograms adopted under the
//! same name merge into one distribution at snapshot time.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::trace::TraceSink;
use mohan_common::stats::Counter;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Named metrics under one namespace, plus the trace ring.
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, GaugeFn>>,
    hists: RwLock<BTreeMap<String, Vec<Arc<Histogram>>>>,
    trace: Arc<TraceSink>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.hists.read().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_trace_capacity(TraceSink::DEFAULT_CAPACITY)
    }
}

impl Registry {
    /// Fresh registry behind an `Arc` (the shape every consumer wants).
    #[must_use]
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    /// Fresh registry whose trace ring keeps `trace_capacity` events
    /// per thread shard.
    #[must_use]
    pub fn with_trace_capacity(trace_capacity: usize) -> Registry {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            hists: RwLock::new(BTreeMap::new()),
            trace: Arc::new(TraceSink::new(trace_capacity)),
        }
    }

    /// Handle to the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register a gauge: `f` is called at snapshot time. Replaces any
    /// previous gauge of the same name.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.gauges.write().insert(name.to_owned(), Box::new(f));
    }

    /// Handle to a histogram named `name`, creating one on first use.
    /// If several histograms were adopted under `name`, the first is
    /// returned (they all merge at snapshot time anyway).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(v) = self.hists.read().get(name) {
            if let Some(h) = v.first() {
                return Arc::clone(h);
            }
        }
        let mut w = self.hists.write();
        let v = w.entry(name.to_owned()).or_default();
        if v.is_empty() {
            v.push(Arc::new(Histogram::new()));
        }
        Arc::clone(&v[0])
    }

    /// Adopt an externally owned histogram under `name`. Multiple
    /// adoptions under one name are merged at snapshot time.
    pub fn adopt_histogram(&self, name: &str, h: Arc<Histogram>) {
        self.hists
            .write()
            .entry(name.to_owned())
            .or_default()
            .push(h);
    }

    /// The trace ring buffer.
    #[must_use]
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Owned handle to the trace ring, for subsystems that cannot
    /// hold the registry itself (the lock manager and WAL record
    /// into the ring without depending on this crate's namespace).
    #[must_use]
    pub fn trace_handle(&self) -> Arc<TraceSink> {
        Arc::clone(&self.trace)
    }

    /// Point-in-time snapshot of everything, names sorted.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauge_names: Vec<String> = Vec::new();
        for (n, f) in self.gauges.read().iter() {
            gauge_names.push(n.clone());
            counters.push((n.clone(), f()));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let histograms: Vec<(String, HistogramSnapshot)> = self
            .hists
            .read()
            .iter()
            .map(|(n, v)| {
                let mut s = HistogramSnapshot::empty();
                for h in v {
                    s.merge(&h.snapshot());
                }
                (n.clone(), s)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauge_names,
            histograms,
        }
    }
}

/// Everything the registry knew at one instant. Both lists are sorted
/// by name (gauges and counters share one flat list — the consumer
/// sees values, not mechanisms).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter and gauge.
    pub counters: Vec<(String, u64)>,
    /// Which of `counters` are gauges (point-in-time reads rather
    /// than monotone counts) — exporters that distinguish metric
    /// types (OpenMetrics) consult this; everything else ignores it.
    /// Sorted by name.
    pub gauge_names: Vec<String>,
    /// `(name, merged distribution)` for every histogram name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter/gauge named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Whether `name` was registered as a gauge (vs a counter).
    #[must_use]
    pub fn is_gauge(&self, name: &str) -> bool {
        self.gauge_names
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }

    /// Distribution of the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_one_sorted_namespace() {
        let r = Registry::new();
        r.counter("z.last").add(3);
        r.counter("a.first").bump();
        r.gauge_fn("m.middle", || 42);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        assert_eq!(s.counter("m.middle"), Some(42));
        assert_eq!(s.counter("a.first"), Some(1));
        assert_eq!(s.counter("nope"), None);
    }

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.bump();
        b.bump();
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn adopted_histograms_merge_under_one_name() {
        let r = Registry::new();
        let a = Arc::new(Histogram::new());
        let b = Arc::new(Histogram::new());
        r.adopt_histogram("latch.wait_us", Arc::clone(&a));
        r.adopt_histogram("latch.wait_us", Arc::clone(&b));
        for v in 0..10 {
            a.record(v);
        }
        b.record(1_000_000);
        let s = r.snapshot();
        let h = s.histogram("latch.wait_us").unwrap();
        assert_eq!(h.count, 11);
        assert_eq!(h.max, 1_000_000);
    }

    #[test]
    fn histogram_creates_on_first_use_and_reuses() {
        let r = Registry::new();
        let h = r.histogram("wal.flush_us");
        h.record(5);
        assert_eq!(r.histogram("wal.flush_us").count(), 1);
        assert_eq!(r.snapshot().histogram("wal.flush_us").unwrap().count, 1);
    }
}
