//! Thread-local trace context: the causal identity a request carries
//! through the system.
//!
//! A [`TraceCtx`] names the trace (one per end-to-end request), the
//! *current* span within it (so child events/spans can link to their
//! parent) and the head-based sampling decision made once when the
//! trace was born. Installation is scoped: [`install_ctx`] returns a
//! guard that restores the previous context on drop, so nested
//! installs (executor checkout, pg statement loops) compose.
//!
//! Crossing threads is explicit: capture [`current_ctx`] before the
//! hop and [`install_ctx`] it on the other side (the build thread,
//! the per-shard executor, the replica apply loop all do this).
//! Crossing *processes* ships only the trace id — span ids are
//! process-local, so remote continuations start a fresh root span
//! under the same trace id via [`ctx_for`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// The causal identity carried by the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace this work belongs to (nonzero; 0 means "no trace").
    pub trace_id: u64,
    /// Span id of the innermost open span (0 at the trace root,
    /// before any span has opened).
    pub span_id: u64,
    /// Head-based sampling decision for the whole trace. When false
    /// the context still propagates (WAL tags, replica hand-off) but
    /// no events are recorded for it.
    pub sampled: bool,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The trace context installed on this thread, if any.
#[must_use]
pub fn current_ctx() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// Install `ctx` on this thread; the returned guard restores whatever
/// was installed before when dropped.
#[must_use]
pub fn install_ctx(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { prev }
}

/// Restores the previously installed context on drop.
#[derive(Debug)]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| c.set(prev));
    }
}

/// SplitMix64 finalizer — the id/sampling mixing function. Public so
/// tests can assert sampling determinism against the same math.
#[must_use]
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);
static TRACE_SEED: OnceLock<u64> = OnceLock::new();

/// A fresh process-unique, well-mixed, nonzero trace id. Seeded from
/// wall-clock nanos once so ids from successive process runs do not
/// collide (relevant when a follower's ring holds ids minted by the
/// primary).
#[must_use]
pub fn new_trace_id() -> u64 {
    let seed = *TRACE_SEED.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x5eed, |d| d.as_nanos() as u64)
    });
    loop {
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        if id != 0 {
            return id;
        }
    }
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// A fresh process-unique span id (nonzero).
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Keep one trace in `n`; 0 and 1 both mean "keep every trace".
static SAMPLE_ONE_IN: AtomicU32 = AtomicU32::new(0);

/// Configure head-based sampling: keep one trace in `n` (0 or 1 keeps
/// all). The decision is a pure function of the trace id, so every
/// process in a deployment that shares the rate agrees on which
/// traces to keep.
pub fn set_trace_sampling(keep_one_in: u32) {
    SAMPLE_ONE_IN.store(keep_one_in, Ordering::Release);
}

/// The configured sampling rate (0/1 = keep all).
#[must_use]
pub fn trace_sampling() -> u32 {
    SAMPLE_ONE_IN.load(Ordering::Acquire)
}

/// Whether `trace_id` is kept under the current sampling rate.
/// Deterministic per id: the same trace id always gets the same
/// verdict at a given rate.
#[must_use]
pub fn trace_sampled(trace_id: u64) -> bool {
    let n = SAMPLE_ONE_IN.load(Ordering::Acquire);
    n <= 1 || splitmix64(trace_id).is_multiple_of(u64::from(n))
}

/// Root context for `trace_id` with the sampling decision applied —
/// what a remote continuation (replica apply) or a client-supplied id
/// installs. A zero id mints a fresh one.
#[must_use]
pub fn ctx_for(trace_id: u64) -> TraceCtx {
    let trace_id = if trace_id == 0 {
        new_trace_id()
    } else {
        trace_id
    };
    TraceCtx {
        trace_id,
        span_id: 0,
        sampled: trace_sampled(trace_id),
    }
}

/// Serializes tests that mutate the global sampling rate (tests in
/// one binary run concurrently; an unsynchronized rate change would
/// flip other tests' sampling verdicts mid-flight).
#[cfg(test)]
pub(crate) static TEST_SAMPLING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_restores_previous_on_drop() {
        assert_eq!(current_ctx(), None);
        let outer = ctx_for(0);
        {
            let _g = install_ctx(outer);
            assert_eq!(current_ctx(), Some(outer));
            let inner = TraceCtx {
                trace_id: outer.trace_id,
                span_id: 99,
                sampled: outer.sampled,
            };
            {
                let _g2 = install_ctx(inner);
                assert_eq!(current_ctx(), Some(inner));
            }
            assert_eq!(current_ctx(), Some(outer));
        }
        assert_eq!(current_ctx(), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = new_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id:#x}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_trace_id() {
        let _lock = TEST_SAMPLING_LOCK.lock().unwrap();
        set_trace_sampling(4);
        let ids: Vec<u64> = (0..256).map(|_| new_trace_id()).collect();
        let first: Vec<bool> = ids.iter().map(|&id| trace_sampled(id)).collect();
        let again: Vec<bool> = ids.iter().map(|&id| trace_sampled(id)).collect();
        assert_eq!(first, again);
        let kept = first.iter().filter(|&&k| k).count();
        // One-in-four over a well-mixed hash: loose bounds, no flake.
        assert!(kept > 16 && kept < 160, "kept {kept}/256 at rate 4");
        set_trace_sampling(0);
        assert!(ids.iter().all(|&id| trace_sampled(id)));
    }
}
