//! The global recording gate lives in process-wide state, so its test
//! runs in this dedicated integration binary (own process) rather than
//! as a unit test racing the concurrent histogram stress tests.

use mohan_obs::{set_recording, Histogram, TraceSink};

#[test]
fn disabled_recording_is_a_no_op_for_histograms_and_traces() {
    let h = Histogram::new();
    let sink = TraceSink::new(8);

    h.record(42);
    sink.event("k", "on", 1);
    assert_eq!(h.count(), 1);
    assert_eq!(sink.events().len(), 1);

    set_recording(false);
    h.record(43);
    h.record_micros(std::time::Duration::from_micros(9));
    sink.event("k", "off", 2);
    sink.span("k", "off-span").commit();
    assert_eq!(h.count(), 1, "records while disabled must be dropped");
    assert_eq!(
        sink.events().len(),
        1,
        "events while disabled must be dropped"
    );

    set_recording(true);
    h.record(44);
    sink.event("k", "on-again", 3);
    assert_eq!(h.count(), 2);
    assert_eq!(sink.events().len(), 2);
    assert_eq!(h.snapshot().max, 44);
}
