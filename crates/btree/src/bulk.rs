//! Bottom-up bulk loading with checkpoint/reset (SF's build phase,
//! §3.1, §3.2.4).
//!
//! "In a bottom-up index build, the keys are sorted in key sequence
//! and then inserted into the first index page which acts as a root as
//! well as a leaf ... the new keys are always added to the rightmost
//! leaf in the tree without a tree traversal from the root and without
//! the cost of latching pages and comparing keys" (§2.3.1). Pages are
//! allocated sequentially, so the finished tree is perfectly
//! clustered.
//!
//! Checkpoints follow §3.2.4 exactly: all dirty index pages are
//! forced, then the highest key and the page-ids of the rightmost
//! branch go to stable storage. After a crash, [`BulkLoader::resume`]
//! "resets the index pages in such a way that the keys higher than the
//! checkpointed key disappear from the index" and marks pages
//! allocated after the checkpoint deallocated.

use crate::node::{LeafEntry, Node};
use crate::tree::BTree;
use mohan_common::{Error, IndexEntry, Lsn, PageId, Result};

/// Stable-storage record of a bulk load's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkCheckpoint {
    /// Highest key inserted so far (`None` = nothing loaded yet).
    pub highest: Option<IndexEntry>,
    /// Entries loaded so far.
    pub count: u64,
    /// Page allocation high-water mark at the checkpoint.
    pub allocated: u32,
    /// Root page at the checkpoint.
    pub root: PageId,
    /// Tree height at the checkpoint.
    pub height: u32,
    /// Rightmost branch, root level first, leaf last.
    pub right_path: Vec<PageId>,
}

impl BulkCheckpoint {
    /// Serialize for the stable blob store.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.highest {
            Some(e) => {
                out.push(1);
                e.encode(&mut out);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.count.to_be_bytes());
        out.extend_from_slice(&self.allocated.to_be_bytes());
        out.extend_from_slice(&self.root.0.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&(self.right_path.len() as u32).to_be_bytes());
        for p in &self.right_path {
            out.extend_from_slice(&p.0.to_be_bytes());
        }
        out
    }

    /// Deserialize; `None` on corrupt input.
    #[must_use]
    pub fn decode(buf: &[u8]) -> Option<BulkCheckpoint> {
        let mut pos = 0;
        let highest = match *buf.first()? {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                Some(IndexEntry::decode(buf, &mut pos)?)
            }
            _ => return None,
        };
        let rd_u64 = |buf: &[u8], pos: &mut usize| -> Option<u64> {
            let b: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
            *pos += 8;
            Some(u64::from_be_bytes(b))
        };
        let rd_u32 = |buf: &[u8], pos: &mut usize| -> Option<u32> {
            let b: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
            *pos += 4;
            Some(u32::from_be_bytes(b))
        };
        let count = rd_u64(buf, &mut pos)?;
        let allocated = rd_u32(buf, &mut pos)?;
        let root = PageId(rd_u32(buf, &mut pos)?);
        let height = rd_u32(buf, &mut pos)?;
        let n = rd_u32(buf, &mut pos)? as usize;
        let mut right_path = Vec::with_capacity(n);
        for _ in 0..n {
            right_path.push(PageId(rd_u32(buf, &mut pos)?));
        }
        Some(BulkCheckpoint {
            highest,
            count,
            allocated,
            root,
            height,
            right_path,
        })
    }
}

/// The bottom-up loader. While it runs it must be the tree's only
/// writer (SF guarantees this: transactions go to the side-file).
pub struct BulkLoader<'t> {
    tree: &'t BTree,
    /// Rightmost branch, root level first, leaf last.
    right_path: Vec<PageId>,
    last: Option<IndexEntry>,
    count: u64,
}

impl<'t> BulkLoader<'t> {
    /// Start loading into an *empty* tree.
    pub fn new(tree: &'t BTree) -> Result<BulkLoader<'t>> {
        let anchor = tree.cache.frame(PageId(0))?;
        let (root, height) = match anchor.latch.share().payload {
            Node::Anchor { root, height } => (root, height),
            _ => return Err(Error::Corruption("missing anchor".into())),
        };
        if height != 1 {
            return Err(Error::Corruption("bulk load requires an empty tree".into()));
        }
        let root_frame = tree.cache.frame(root)?;
        if !root_frame.latch.share().payload.leaf_entries().is_empty() {
            return Err(Error::Corruption("bulk load requires an empty tree".into()));
        }
        Ok(BulkLoader {
            tree,
            right_path: vec![root],
            last: None,
            count: 0,
        })
    }

    /// Append one entry; must be strictly greater than the previous.
    pub fn append(&mut self, entry: IndexEntry) -> Result<()> {
        let _structure = self.tree.structure_shared();
        if let Some(last) = &self.last {
            if entry <= *last {
                return Err(Error::Corruption(format!(
                    "bulk input not ascending: {entry:?} after {last:?}"
                )));
            }
        }
        let fill =
            ((self.tree.config().page_size as f64) * self.tree.config().fill_factor) as usize;
        let leaf_page = *self.right_path.last().expect("path nonempty");
        let frame = self.tree.cache.frame(leaf_page)?;
        {
            let mut g = frame.latch.exclusive();
            let le = LeafEntry::live(entry.clone());
            if g.payload.size() + le.size() <= fill || g.payload.leaf_entries().is_empty() {
                if let Node::Leaf { entries, .. } = &mut g.payload {
                    entries.push(le);
                }
                self.last = Some(entry);
                self.count += 1;
                return Ok(());
            }
        }
        // Leaf full: open a new rightmost leaf and promote a separator.
        let new_leaf = self.tree.cache.allocate(Node::Leaf {
            entries: vec![LeafEntry::live(entry.clone())],
            next: None,
            high_fence: None,
        });
        {
            let mut g = frame.latch.exclusive();
            if let Node::Leaf {
                next, high_fence, ..
            } = &mut g.payload
            {
                *next = Some(new_leaf.id);
                *high_fence = Some(entry.clone());
            }
        }
        let depth = self.right_path.len() - 1;
        *self.right_path.last_mut().expect("path") = new_leaf.id;
        self.promote(entry.clone(), new_leaf.id, depth)?;
        self.last = Some(entry);
        self.count += 1;
        Ok(())
    }

    /// Attach `child` (whose low fence is `sep`) at `depth - 1`,
    /// growing the tree if the new child was the root's sibling.
    fn promote(&mut self, sep: IndexEntry, child: PageId, depth: usize) -> Result<()> {
        if depth == 0 {
            // The split page *was* the root: grow upward. The anchor
            // is authoritative for the old root — `right_path[0]` has
            // already been overwritten with the new rightmost node.
            let old_root = {
                let anchor = self.tree.cache.frame(PageId(0))?;
                let g = anchor.latch.share();
                match g.payload {
                    Node::Anchor { root, .. } => root,
                    _ => return Err(Error::Corruption("missing anchor".into())),
                }
            };
            let new_root = self.tree.cache.allocate(Node::Internal {
                seps: vec![sep],
                children: vec![old_root, child],
            });
            let anchor = self.tree.cache.frame(PageId(0))?;
            let mut g = anchor.latch.exclusive();
            if let Node::Anchor { root, height } = &mut g.payload {
                *root = new_root.id;
                *height += 1;
            }
            self.right_path.insert(0, new_root.id);
            return Ok(());
        }
        let fill =
            ((self.tree.config().page_size as f64) * self.tree.config().fill_factor) as usize;
        let parent_page = self.right_path[depth - 1];
        let frame = self.tree.cache.frame(parent_page)?;
        {
            let mut g = frame.latch.exclusive();
            let fits = g.payload.size() + sep.encoded_size() + 4 <= fill;
            if let Node::Internal { seps, children } = &mut g.payload {
                if fits || seps.is_empty() {
                    seps.push(sep);
                    children.push(child);
                    return Ok(());
                }
            } else {
                return Err(Error::Corruption("bulk path parent not internal".into()));
            }
        }
        // Parent full: open a new rightmost internal node holding only
        // the new child, and promote the separator another level up.
        let new_node = self.tree.cache.allocate(Node::Internal {
            seps: vec![],
            children: vec![child],
        });
        self.right_path[depth - 1] = new_node.id;
        self.promote(sep, new_node.id, depth - 1)
    }

    /// §3.2.4 checkpoint: force all index pages, then describe the
    /// loader state for stable storage.
    pub fn checkpoint(&self, flushed: Lsn) -> Result<BulkCheckpoint> {
        self.tree.force_all(flushed)?;
        let anchor = self.tree.cache.frame(PageId(0))?;
        let (root, height) = match anchor.latch.share().payload {
            Node::Anchor { root, height } => (root, height),
            _ => return Err(Error::Corruption("missing anchor".into())),
        };
        Ok(BulkCheckpoint {
            highest: self.last.clone(),
            count: self.count,
            allocated: self.tree.cache.num_pages(),
            root,
            height,
            right_path: self.right_path.clone(),
        })
    }

    /// Resume after a crash: reset the tree to the checkpoint and
    /// return a loader ready for the next key after `cp.highest`.
    pub fn resume(tree: &'t BTree, cp: &BulkCheckpoint) -> Result<BulkLoader<'t>> {
        // Pages allocated after the checkpoint go back to the
        // deallocated state.
        tree.cache.truncate_from(PageId(cp.allocated));
        // Restore the anchor.
        {
            let anchor = tree.cache.frame(PageId(0))?;
            let mut g = anchor.latch.exclusive();
            g.payload = Node::Anchor {
                root: cp.root,
                height: cp.height,
            };
        }
        // Prune the rightmost branch: keys above the checkpointed
        // highest key, and children pointing at deallocated pages,
        // disappear.
        for &page in &cp.right_path {
            let frame = tree.cache.frame(page)?;
            let mut g = frame.latch.exclusive();
            match &mut g.payload {
                Node::Leaf {
                    entries,
                    next,
                    high_fence,
                } => {
                    match &cp.highest {
                        Some(h) => entries.retain(|le| le.entry <= *h),
                        None => entries.clear(),
                    }
                    *next = None; // rightmost leaf has no successor
                    *high_fence = None;
                }
                Node::Internal { seps, children } => {
                    children.retain(|c| c.0 < cp.allocated);
                    seps.truncate(children.len().saturating_sub(1));
                }
                Node::Anchor { .. } => {
                    return Err(Error::Corruption("anchor on right path".into()))
                }
            }
        }
        Ok(BulkLoader {
            tree,
            right_path: cp.right_path.clone(),
            last: cp.highest.clone(),
            count: cp.count,
        })
    }

    /// Entries loaded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Highest key loaded so far.
    #[must_use]
    pub fn highest(&self) -> Option<&IndexEntry> {
        self.last.as_ref()
    }

    /// Complete the load, forcing the finished tree.
    pub fn finish(self, flushed: Lsn) -> Result<u64> {
        self.tree.cache.force_all(flushed)?;
        Ok(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{clustering, collect_all, verify_structure};
    use crate::tree::BTreeConfig;
    use mohan_common::{FileId, KeyValue, Rid};

    fn tree() -> BTree {
        BTree::create(
            FileId(12),
            BTreeConfig {
                page_size: 256,
                fill_factor: 0.9,
                unique: false,
                hint_enabled: true,
            },
        )
    }

    fn e(k: i64) -> IndexEntry {
        IndexEntry::new(
            KeyValue::from_i64(k),
            Rid::new((k / 10) as u32, (k % 10) as u16),
        )
    }

    #[test]
    fn loads_sorted_stream() {
        let t = tree();
        let mut bl = BulkLoader::new(&t).unwrap();
        for k in 0..3000i64 {
            bl.append(e(k)).unwrap();
        }
        assert_eq!(bl.finish(Lsn::NULL).unwrap(), 3000);
        verify_structure(&t).unwrap();
        let all = collect_all(&t, true).unwrap();
        assert_eq!(all.len(), 3000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn bulk_build_is_perfectly_clustered() {
        let t = tree();
        let mut bl = BulkLoader::new(&t).unwrap();
        for k in 0..3000i64 {
            bl.append(e(k)).unwrap();
        }
        bl.finish(Lsn::NULL).unwrap();
        let c = clustering(&t).unwrap();
        assert!(c.leaves > 20);
        assert_eq!(c.clustering_ratio(), 1.0);
        // Fill factor respected: occupancy near the target.
        assert!(c.avg_occupancy > 0.6, "occupancy {}", c.avg_occupancy);
    }

    #[test]
    fn rejects_unsorted_input() {
        let t = tree();
        let mut bl = BulkLoader::new(&t).unwrap();
        bl.append(e(10)).unwrap();
        assert!(bl.append(e(10)).is_err());
        assert!(bl.append(e(5)).is_err());
    }

    #[test]
    fn rejects_nonempty_tree() {
        let t = tree();
        t.insert(e(1), crate::tree::InsertMode::Transaction)
            .unwrap();
        assert!(BulkLoader::new(&t).is_err());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let t = tree();
        let mut bl = BulkLoader::new(&t).unwrap();
        for k in 0..500i64 {
            bl.append(e(k)).unwrap();
        }
        let cp = bl.checkpoint(Lsn::NULL).unwrap();
        assert_eq!(BulkCheckpoint::decode(&cp.encode()), Some(cp.clone()));
        assert_eq!(cp.count, 500);
        assert_eq!(cp.highest, Some(e(499)));
    }

    #[test]
    fn crash_resume_produces_identical_tree() {
        // Reference: uninterrupted load.
        let t_ref = tree();
        let mut bl = BulkLoader::new(&t_ref).unwrap();
        for k in 0..2000i64 {
            bl.append(e(k)).unwrap();
        }
        bl.finish(Lsn::NULL).unwrap();
        let reference = collect_all(&t_ref, true).unwrap();

        // Crash run: checkpoint at 1200, keep loading to 1700, crash,
        // resume, reload 1200.. to the end.
        let t = tree();
        let mut bl = BulkLoader::new(&t).unwrap();
        for k in 0..1200i64 {
            bl.append(e(k)).unwrap();
        }
        let cp = bl.checkpoint(Lsn::NULL).unwrap();
        for k in 1200..1700i64 {
            bl.append(e(k)).unwrap();
        }
        drop(bl);
        t.cache.crash();

        let mut bl = BulkLoader::resume(&t, &cp).unwrap();
        assert_eq!(bl.count(), 1200);
        for k in 1200..2000i64 {
            bl.append(e(k)).unwrap();
        }
        bl.finish(Lsn::NULL).unwrap();
        verify_structure(&t).unwrap();
        assert_eq!(collect_all(&t, true).unwrap(), reference);
    }

    #[test]
    fn resume_with_no_checkpointed_keys_restarts_clean() {
        let t = tree();
        let bl = BulkLoader::new(&t).unwrap();
        let cp = bl.checkpoint(Lsn::NULL).unwrap();
        drop(bl);
        // Load some, crash before any further checkpoint.
        let mut bl2 = BulkLoader::resume(&t, &cp).unwrap();
        for k in 0..100i64 {
            bl2.append(e(k)).unwrap();
        }
        drop(bl2);
        t.cache.crash();
        let mut bl3 = BulkLoader::resume(&t, &cp).unwrap();
        assert_eq!(bl3.count(), 0);
        for k in 0..50i64 {
            bl3.append(e(k)).unwrap();
        }
        bl3.finish(Lsn::NULL).unwrap();
        assert_eq!(collect_all(&t, true).unwrap().len(), 50);
        verify_structure(&t).unwrap();
    }

    #[test]
    fn crash_at_every_phase_of_a_small_load() {
        // Checkpoint every 64 keys; crash after each checkpoint in
        // turn; the final tree must always match the reference.
        let reference: Vec<i64> = (0..400).collect();
        for crash_after_cp in 0..6 {
            let t = tree();
            let mut bl = BulkLoader::new(&t).unwrap();
            let mut cps: Vec<BulkCheckpoint> = vec![bl.checkpoint(Lsn::NULL).unwrap()];
            let mut k = 0i64;
            let mut crashed = false;
            while k < 400 {
                bl.append(e(k)).unwrap();
                k += 1;
                if k % 64 == 0 {
                    cps.push(bl.checkpoint(Lsn::NULL).unwrap());
                    if cps.len() == crash_after_cp + 2 {
                        crashed = true;
                        break;
                    }
                }
            }
            if crashed {
                drop(bl);
                t.cache.crash();
                let cp = cps.last().unwrap().clone();
                let mut bl2 = BulkLoader::resume(&t, &cp).unwrap();
                let mut k2 = bl2.count() as i64;
                while k2 < 400 {
                    bl2.append(e(k2)).unwrap();
                    k2 += 1;
                }
                bl2.finish(Lsn::NULL).unwrap();
            } else {
                bl.finish(Lsn::NULL).unwrap();
            }
            verify_structure(&t).unwrap();
            let got: Vec<i64> = collect_all(&t, true)
                .unwrap()
                .iter()
                .map(|(e, _)| e.key.first_i64().unwrap())
                .collect();
            assert_eq!(got, reference, "crash_after_cp={crash_after_cp}");
        }
    }
}
