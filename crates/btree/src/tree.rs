//! The latched B+-tree.
//!
//! All mutating operations descend with exclusive-latch crabbing:
//! ancestors stay latched only while the child could split, so
//! concurrent inserts to different subtrees proceed in parallel —
//! which is what lets NSF's index builder and transactions work in the
//! same tree at once.
//!
//! Unique indexes keep every run of equal key values inside a single
//! leaf (splits are adjusted to run boundaries), so uniqueness checks
//! and the paper's pseudo-delete arbitration (§2.2.3) happen entirely
//! under one leaf latch.

use crate::node::{LeafEntry, Node};
use mohan_common::stats::Counter;
use mohan_common::{Error, FileId, IndexEntry, KeyValue, Lsn, PageId, Result, Rid};
use mohan_storage::cache::PageBuf;
use mohan_storage::{ExclusiveGuard, PageCache, ShareGuard};
use parking_lot::Mutex;

/// Tree tuning knobs.
#[derive(Debug, Clone)]
pub struct BTreeConfig {
    /// Byte capacity of a node.
    pub page_size: usize,
    /// Target occupancy for builder/bulk inserts (free space left for
    /// future growth, §2.2.3).
    pub fill_factor: f64,
    /// Enforce key-value uniqueness.
    pub unique: bool,
    /// Use the remembered-path insert hint for IB-mode inserts
    /// (ablation switch for experiment E3).
    pub hint_enabled: bool,
}

impl BTreeConfig {
    fn max_entry(&self) -> usize {
        self.page_size / 4
    }

    fn fill_target(&self) -> usize {
        ((self.page_size as f64) * self.fill_factor) as usize
    }
}

/// Pathlength counters reproducing the paper's §2.3.1/§4 arguments.
#[derive(Debug, Default)]
pub struct BTreeStats {
    /// Root-to-leaf descents.
    pub traversals: Counter,
    /// Inserts satisfied by the remembered-path hint (no descent).
    pub remembered_hits: Counter,
    /// Ordinary half splits.
    pub splits: Counter,
    /// IB-specialized "move higher keys only" splits (§2.3.1).
    pub ib_splits: Counter,
    /// Entries physically inserted.
    pub inserts: Counter,
    /// Inserts rejected because the exact entry already existed.
    pub duplicate_rejects: Counter,
    /// Keys marked pseudo-deleted.
    pub pseudo_deletes: Counter,
    /// Tombstones planted by deleters that found no key.
    pub tombstones: Counter,
    /// Pseudo-deleted keys put back in the inserted state.
    pub reactivations: Counter,
    /// Keys physically removed.
    pub physical_deletes: Counter,
}

/// Who is inserting, which selects split behaviour and hint usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertMode {
    /// Ordinary transaction: half splits, full descents.
    Transaction,
    /// The NSF index builder: remembered-path hint, fill-factor
    /// targets, move-higher-keys-only splits.
    Ib,
}

/// Result of an insert attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry went in.
    Inserted,
    /// The exact `<key value, RID>` entry was already present
    /// (possibly pseudo-deleted). Nothing was changed.
    DuplicateEntry {
        /// Present but pseudo-deleted.
        pseudo: bool,
    },
    /// Unique index only: a *different* RID already carries this key
    /// value. Nothing was changed; the caller arbitrates (§2.2.3).
    DuplicateKeyValue {
        /// The conflicting record.
        existing: Rid,
        /// Whether the conflicting key is pseudo-deleted.
        existing_pseudo: bool,
    },
}

/// State of a looked-up entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryState {
    /// Pseudo-deleted flag.
    pub pseudo_deleted: bool,
}

struct PathFrame {
    page: PageId,
    guard: ExclusiveGuard<PageBuf<Node>>,
}

/// The B+-tree.
pub struct BTree {
    /// Page store (page 0 is the anchor).
    pub cache: PageCache<Node>,
    cfg: BTreeConfig,
    /// Event counters.
    pub stats: BTreeStats,
    hint: Mutex<Option<PageId>>,
    /// Structure lock: every mutating operation holds it shared;
    /// [`BTree::force_all`] holds it exclusively so the durable image
    /// never captures a half-applied split. Per-entry content
    /// staleness across pages is fine — logical redo repairs it — but
    /// a torn *structure* (an internal page naming a never-forced
    /// child) would not be recoverable.
    structure: parking_lot::RwLock<()>,
}

impl BTree {
    /// Create a fresh tree: anchor + one empty leaf.
    #[must_use]
    pub fn create(file: FileId, cfg: BTreeConfig) -> BTree {
        let cache = PageCache::new(file);
        let anchor = cache.allocate(Node::Anchor {
            root: PageId(1),
            height: 1,
        });
        debug_assert_eq!(anchor.id, PageId(0));
        let root = cache.allocate(Node::empty_leaf());
        debug_assert_eq!(root.id, PageId(1));
        BTree {
            cache,
            cfg,
            stats: BTreeStats::default(),
            hint: Mutex::new(None),
            structure: parking_lot::RwLock::new(()),
        }
    }

    /// Hold the structure lock shared for the duration of a mutating
    /// operation (splits stay invisible to `force_all`).
    pub(crate) fn structure_shared(&self) -> parking_lot::RwLockReadGuard<'_, ()> {
        self.structure.read()
    }

    /// Configuration in force.
    #[must_use]
    pub fn config(&self) -> &BTreeConfig {
        &self.cfg
    }

    /// Is this a unique index?
    #[must_use]
    pub fn unique(&self) -> bool {
        self.cfg.unique
    }

    /// Reset the tree to empty (drop-index / cancel-build, §2.3.2).
    pub fn clear(&self) {
        // Exclude force_all for the duration: a concurrent engine
        // checkpoint must never capture a half-cleared tree.
        let _structure = self.structure.write();
        self.cache.truncate_from(PageId(1));
        let root = self.cache.allocate(Node::empty_leaf());
        let anchor = self.cache.frame(PageId(0)).expect("anchor");
        let mut g = anchor.latch.exclusive();
        g.payload = Node::Anchor {
            root: root.id,
            height: 1,
        };
        *self.hint.lock() = None;
    }

    /// Force every page (IB checkpoints and engine checkpoints).
    /// Excludes structure changes for the duration so the durable
    /// image is a structurally consistent tree.
    pub fn force_all(&self, flushed: Lsn) -> Result<()> {
        let _structure = self.structure.write();
        self.cache.force_all(flushed)
    }

    // ----- descents -------------------------------------------------

    /// Share-mode descent to the leaf for `entry`.
    fn descend_s(&self, entry: &IndexEntry) -> Result<(PageId, ShareGuard<PageBuf<Node>>)> {
        self.stats.traversals.bump();
        let anchor = self.cache.frame(PageId(0))?;
        let mut guard = anchor.latch.share_arc();
        loop {
            let next = match &guard.payload {
                Node::Anchor { root, .. } => *root,
                Node::Internal { children, .. } => children[guard.payload.route(entry)],
                Node::Leaf { .. } => {
                    // `guard` already is the leaf; find its id by
                    // re-deriving below. Leaf reached only via child
                    // hop which returns early, so this arm is
                    // unreachable in practice.
                    unreachable!("leaf reached without page id")
                }
            };
            let frame = self.cache.frame(next)?;
            let child = frame.latch.share_arc();
            if matches!(child.payload, Node::Leaf { .. }) {
                return Ok((next, child));
            }
            guard = child;
        }
    }

    /// Exclusive-mode crabbing descent. Returns the path of retained
    /// frames; the last is the leaf. Ancestors are retained only while
    /// the child below them might split; `leaf_capacity` is the split
    /// threshold the caller will use for the leaf (the fill target for
    /// IB inserts, the full page otherwise).
    fn descend_x_with(&self, entry: &IndexEntry, leaf_capacity: usize) -> Result<Vec<PathFrame>> {
        self.stats.traversals.bump();
        let mut path: Vec<PathFrame> = Vec::with_capacity(4);
        let anchor = self.cache.frame(PageId(0))?;
        let g = anchor.latch.exclusive_arc();
        path.push(PathFrame {
            page: PageId(0),
            guard: g,
        });
        loop {
            let (next, is_last_internal_hop) = {
                let top = &path.last().expect("path nonempty").guard.payload;
                match top {
                    Node::Anchor { root, .. } => (*root, false),
                    Node::Internal { children, .. } => (children[top.route(entry)], false),
                    Node::Leaf { .. } => return Ok(path),
                }
            };
            let _ = is_last_internal_hop;
            let frame = self.cache.frame(next)?;
            let guard = frame.latch.exclusive_arc();
            let safe = match &guard.payload {
                Node::Leaf { .. } => guard.payload.size() + self.cfg.max_entry() <= leaf_capacity,
                Node::Internal { .. } => {
                    guard.payload.size() + self.cfg.max_entry() + 4 <= self.cfg.page_size
                }
                Node::Anchor { .. } => return Err(Error::Corruption("anchor below root".into())),
            };
            if safe {
                path.clear();
            }
            let done = matches!(guard.payload, Node::Leaf { .. });
            path.push(PathFrame { page: next, guard });
            if done {
                return Ok(path);
            }
        }
    }

    /// Exclusive descent with the ordinary (full-page) leaf threshold.
    fn descend_x(&self, entry: &IndexEntry) -> Result<Vec<PathFrame>> {
        self.descend_x_with(entry, self.cfg.page_size)
    }

    // ----- split machinery ------------------------------------------

    /// Split point by accumulated byte size (half split).
    fn half_split_point(entries: &[LeafEntry]) -> usize {
        let total: usize = entries.iter().map(LeafEntry::size).sum();
        let mut acc = 0;
        for (i, le) in entries.iter().enumerate() {
            acc += le.size();
            if acc * 2 >= total {
                return (i + 1).min(entries.len() - 1).max(1);
            }
        }
        entries.len() / 2
    }

    /// Adjust a split point outward so it does not cut an equal-key run
    /// (unique indexes keep key-value groups leaf-local).
    fn adjust_for_unique(entries: &[LeafEntry], at: usize) -> Result<usize> {
        if at == 0 || at >= entries.len() {
            return Ok(at.clamp(1, entries.len().saturating_sub(1).max(1)));
        }
        let key = &entries[at - 1].entry.key;
        if entries[at].entry.key != *key {
            return Ok(at);
        }
        // Try moving right past the run, then left before it.
        let right = entries[at..]
            .iter()
            .position(|e| e.entry.key != *key)
            .map(|o| at + o);
        if let Some(r) = right {
            if r < entries.len() {
                return Ok(r);
            }
        }
        let left = entries[..at]
            .iter()
            .rposition(|e| e.entry.key != *key)
            .map(|o| o + 1);
        if let Some(l) = left {
            if l > 0 {
                return Ok(l);
            }
        }
        Err(Error::Corruption(
            "equal-key run fills an entire leaf of a unique index".into(),
        ))
    }

    /// Split the leaf at the top of `path`, then insert `le` into the
    /// proper half. `path` must still contain the leaf's retained
    /// ancestors. `ib` selects the specialized split.
    fn split_leaf_and_insert(
        &self,
        mut path: Vec<PathFrame>,
        le: LeafEntry,
        ib: bool,
    ) -> Result<PageId> {
        let mut leaf_frame = path.pop().expect("leaf frame");
        let (mut left_entries, old_next, old_fence) = match &mut leaf_frame.guard.payload {
            Node::Leaf {
                entries,
                next,
                high_fence,
            } => (std::mem::take(entries), *next, high_fence.take()),
            _ => return Err(Error::Corruption("split target not a leaf".into())),
        };

        let pos = left_entries.partition_point(|e| e.entry < le.entry);
        let mut split_at = if ib {
            self.stats.ib_splits.bump();
            // Move only the keys higher than the one being inserted
            // (they must have come from transactions); if there are
            // none, open a fresh leaf for the new key (§2.3.1).
            pos
        } else {
            self.stats.splits.bump();
            Self::half_split_point(&left_entries)
        };
        if self.cfg.unique && !ib {
            split_at = Self::adjust_for_unique(&left_entries, split_at)?;
        }
        let right_entries: Vec<LeafEntry> = left_entries.split_off(split_at);
        if let Node::Leaf { entries, .. } = &mut leaf_frame.guard.payload {
            *entries = left_entries;
        }

        let _ = pos;
        let new_frame = self.cache.allocate(Node::Leaf {
            entries: right_entries,
            next: old_next,
            high_fence: old_fence,
        });
        let new_page = new_frame.id;

        // Decide which side receives the new entry, insert it, and
        // derive the separator from the right page's final contents.
        // The fresh page is unreachable by others until the parent and
        // chain pointers are updated, so latching it here cannot
        // deadlock.
        let (sep, target) = {
            let mut right = new_frame.latch.exclusive();
            let goes_right = match right.payload.leaf_entries().first() {
                Some(first) => le.entry >= first.entry,
                None => true, // IB append split: fresh leaf takes it
            };
            if goes_right {
                if let Node::Leaf { entries, .. } = &mut right.payload {
                    let p = entries.partition_point(|e| e.entry < le.entry);
                    entries.insert(p, le.clone());
                }
            } else if let Node::Leaf { entries, .. } = &mut leaf_frame.guard.payload {
                let p = entries.partition_point(|e| e.entry < le.entry);
                entries.insert(p, le.clone());
            }
            let sep = right
                .payload
                .leaf_entries()
                .first()
                .map(|e| e.entry.clone())
                .ok_or_else(|| Error::Corruption("empty right split".into()))?;
            let target = if goes_right {
                new_page
            } else {
                leaf_frame.page
            };
            (sep, target)
        };

        // Fix the chain and freeze the left page's new upper bound.
        if let Node::Leaf {
            next, high_fence, ..
        } = &mut leaf_frame.guard.payload
        {
            *next = Some(new_page);
            *high_fence = Some(sep.clone());
        }
        let left_page = leaf_frame.page;
        drop(leaf_frame);

        self.insert_separator(path, left_page, sep, new_page)?;
        Ok(target)
    }

    /// Propagate a split: link `(sep, new_child)` to the right of
    /// `left_child` in its parent, splitting upward as needed.
    fn insert_separator(
        &self,
        mut path: Vec<PathFrame>,
        left_child: PageId,
        sep: IndexEntry,
        new_child: PageId,
    ) -> Result<()> {
        let Some(mut parent) = path.pop() else {
            return Err(Error::Corruption(
                "split cascaded past retained path".into(),
            ));
        };
        match &mut parent.guard.payload {
            Node::Anchor { root, height } => {
                // Root split: grow the tree.
                debug_assert_eq!(*root, left_child);
                let new_root = self.cache.allocate(Node::Internal {
                    seps: vec![sep],
                    children: vec![left_child, new_child],
                });
                *root = new_root.id;
                *height += 1;
                Ok(())
            }
            Node::Internal { seps, children } => {
                let idx = children
                    .iter()
                    .position(|&c| c == left_child)
                    .ok_or_else(|| Error::Corruption("lost child during split".into()))?;
                seps.insert(idx, sep);
                children.insert(idx + 1, new_child);
                if parent.guard.payload.size() <= self.cfg.page_size {
                    return Ok(());
                }
                // Split this internal node: middle separator moves up.
                let (mut lseps, mut lchildren) = match &mut parent.guard.payload {
                    Node::Internal { seps, children } => {
                        (std::mem::take(seps), std::mem::take(children))
                    }
                    _ => unreachable!(),
                };
                let mid = lseps.len() / 2;
                let up = lseps[mid].clone();
                let rseps = lseps.split_off(mid + 1);
                lseps.pop(); // `up` moves up, not right
                let rchildren = lchildren.split_off(mid + 1);
                let new_node = self.cache.allocate(Node::Internal {
                    seps: rseps,
                    children: rchildren,
                });
                parent.guard.payload = Node::Internal {
                    seps: lseps,
                    children: lchildren,
                };
                let left_page = parent.page;
                drop(parent);
                self.insert_separator(path, left_page, up, new_node.id)
            }
            Node::Leaf { .. } => Err(Error::Corruption("leaf as split parent".into())),
        }
    }

    // ----- inserts ---------------------------------------------------

    fn check_entry_size(&self, entry: &IndexEntry) -> Result<()> {
        if entry.encoded_size() + 1 > self.cfg.max_entry() {
            return Err(Error::Corruption(format!(
                "key of {} bytes exceeds max entry size {}",
                entry.encoded_size(),
                self.cfg.max_entry()
            )));
        }
        Ok(())
    }

    /// Try the remembered-path hint: returns `Some(path)` positioned at
    /// the hinted leaf if the entry provably belongs there and fits.
    fn try_hint(&self, entry: &IndexEntry) -> Option<Vec<PathFrame>> {
        if !self.cfg.hint_enabled {
            return None;
        }
        let page = (*self.hint.lock())?;
        let frame = self.cache.frame(page).ok()?;
        let guard = frame.latch.exclusive_arc();
        // The hinted path holds no ancestors, so it must never split:
        // reject leaves at the IB fill target and fall back to a full
        // crabbing descent.
        let fits = guard.payload.size() + entry.encoded_size() < self.cfg.fill_target();
        match &guard.payload {
            Node::Leaf {
                entries,
                high_fence,
                ..
            } => {
                let first = entries.first()?;
                if *entry < first.entry || !fits {
                    return None;
                }
                // The high fence is frozen at split time, so this
                // containment check stays sound even after physical
                // deletes shuffle the neighbours' first keys.
                if let Some(fence) = high_fence {
                    if *entry >= *fence {
                        return None;
                    }
                }
                self.stats.remembered_hits.bump();
                Some(vec![PathFrame { page, guard }])
            }
            _ => None,
        }
    }

    /// Insert `entry` (live). See [`InsertOutcome`] for the cases.
    pub fn insert(&self, entry: IndexEntry, mode: InsertMode) -> Result<InsertOutcome> {
        let _structure = self.structure_shared();
        self.check_entry_size(&entry)?;
        let mut path = match mode {
            InsertMode::Ib => self
                .try_hint(&entry)
                .map_or_else(|| self.descend_x_with(&entry, self.cfg.fill_target()), Ok)?,
            InsertMode::Transaction => self.descend_x(&entry)?,
        };
        let leaf = path.last_mut().expect("leaf");
        let leaf_page = leaf.page;

        // Duplicate / uniqueness checks under the leaf latch.
        match leaf.guard.payload.leaf_search(&entry) {
            Ok(i) => {
                let pseudo = leaf.guard.payload.leaf_entries()[i].pseudo_deleted;
                self.stats.duplicate_rejects.bump();
                return Ok(InsertOutcome::DuplicateEntry { pseudo });
            }
            Err(_) => {
                if self.cfg.unique {
                    if let Some((rid, pseudo)) = find_key_conflict(&leaf.guard.payload, &entry) {
                        return Ok(InsertOutcome::DuplicateKeyValue {
                            existing: rid,
                            existing_pseudo: pseudo,
                        });
                    }
                }
            }
        }

        let le = LeafEntry::live(entry);
        let threshold = match mode {
            InsertMode::Ib => self.cfg.fill_target(),
            InsertMode::Transaction => self.cfg.page_size,
        };
        let landed = if leaf.guard.payload.size() + le.size() <= threshold {
            let pos = match leaf.guard.payload.leaf_search(&le.entry) {
                Err(p) => p,
                Ok(_) => unreachable!("checked above"),
            };
            if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                entries.insert(pos, le);
            }
            leaf_page
        } else {
            self.split_leaf_and_insert(path, le, mode == InsertMode::Ib)?
        };
        self.stats.inserts.bump();
        if mode == InsertMode::Ib {
            *self.hint.lock() = Some(landed);
        }
        Ok(InsertOutcome::Inserted)
    }

    // ----- flag operations ------------------------------------------

    /// Set or clear the pseudo-deleted flag of the exact entry.
    /// Returns whether the entry was found.
    pub fn set_pseudo(&self, entry: &IndexEntry, pseudo: bool) -> Result<bool> {
        let _structure = self.structure_shared();
        let mut path = self.descend_x(entry)?;
        let leaf = path.last_mut().expect("leaf");
        match leaf.guard.payload.leaf_search(entry) {
            Ok(i) => {
                if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                    if entries[i].pseudo_deleted != pseudo {
                        entries[i].pseudo_deleted = pseudo;
                        if pseudo {
                            self.stats.pseudo_deletes.bump();
                        } else {
                            self.stats.reactivations.bump();
                        }
                    }
                }
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Deleter path: mark the exact entry pseudo-deleted, or plant a
    /// pseudo-deleted tombstone if it is absent (§2.2.3). Returns
    /// `true` if the key existed (marked), `false` if a tombstone was
    /// inserted.
    pub fn pseudo_delete_or_tombstone(&self, entry: &IndexEntry) -> Result<bool> {
        let _structure = self.structure_shared();
        let mut path = self.descend_x(entry)?;
        let leaf = path.last_mut().expect("leaf");
        match leaf.guard.payload.leaf_search(entry) {
            Ok(i) => {
                if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                    entries[i].pseudo_deleted = true;
                }
                self.stats.pseudo_deletes.bump();
                Ok(true)
            }
            Err(pos) => {
                let le = LeafEntry::tombstone(entry.clone());
                if leaf.guard.payload.size() + le.size() <= self.cfg.page_size {
                    if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                        entries.insert(pos, le);
                    }
                } else {
                    self.split_leaf_and_insert(path, le, false)?;
                }
                self.stats.tombstones.bump();
                Ok(false)
            }
        }
    }

    /// Physically remove the exact entry (GC, drain deletes, cancel).
    pub fn physical_delete(&self, entry: &IndexEntry) -> Result<bool> {
        let _structure = self.structure_shared();
        let mut path = self.descend_x(entry)?;
        let leaf = path.last_mut().expect("leaf");
        match leaf.guard.payload.leaf_search(entry) {
            Ok(i) => {
                if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                    entries.remove(i);
                }
                self.stats.physical_deletes.bump();
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Physically remove the exact entry only if it is still live.
    /// The IB's batch-insert undo goes through here: an entry a
    /// committed deleter has pseudo-deleted since the IB inserted it
    /// is that deleter's tombstone — removing it would let the
    /// resumed IB re-insert the stale key (§2.2.3) — so it stays.
    /// Returns `true` if the entry was removed.
    pub fn physical_delete_if_live(&self, entry: &IndexEntry) -> Result<bool> {
        let _structure = self.structure_shared();
        let mut path = self.descend_x(entry)?;
        let leaf = path.last_mut().expect("leaf");
        match leaf.guard.payload.leaf_search(entry) {
            Ok(i) => {
                if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                    if entries[i].pseudo_deleted {
                        return Ok(false);
                    }
                    entries.remove(i);
                }
                self.stats.physical_deletes.bump();
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Unique-index repair from the paper's example (§2.2.3 item 9):
    /// the committed-dead pseudo entry `<key, old_rid>` is replaced by
    /// a live `<key, new_rid>` in place.
    pub fn unique_replace(&self, key: &KeyValue, old_rid: Rid, new_rid: Rid) -> Result<bool> {
        let _structure = self.structure_shared();
        let probe = IndexEntry::new(key.clone(), old_rid);
        let mut path = self.descend_x(&probe)?;
        let leaf = path.last_mut().expect("leaf");
        match leaf.guard.payload.leaf_search(&probe) {
            Ok(i) => {
                if let Node::Leaf { entries, .. } = &mut leaf.guard.payload {
                    entries.remove(i);
                    let fresh = LeafEntry::live(IndexEntry::new(key.clone(), new_rid));
                    let pos = entries.partition_point(|e| e.entry < fresh.entry);
                    entries.insert(pos, fresh);
                }
                self.stats.reactivations.bump();
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    // ----- lookups ---------------------------------------------------

    /// Look up the exact entry.
    pub fn lookup_exact(&self, entry: &IndexEntry) -> Result<Option<EntryState>> {
        let (_, guard) = self.descend_s(entry)?;
        Ok(match guard.payload.leaf_search(entry) {
            Ok(i) => Some(EntryState {
                pseudo_deleted: guard.payload.leaf_entries()[i].pseudo_deleted,
            }),
            Err(_) => None,
        })
    }

    /// All `(RID, pseudo)` pairs carrying `key`, in RID order. Walks
    /// right across leaves with share-latch coupling.
    pub fn lookup_key_group(&self, key: &KeyValue) -> Result<Vec<(Rid, bool)>> {
        let probe = IndexEntry::new(key.clone(), Rid::MIN);
        let (_, mut guard) = self.descend_s(&probe)?;
        let mut out = Vec::new();
        loop {
            let (entries, next) = match &guard.payload {
                Node::Leaf { entries, next, .. } => (entries, *next),
                _ => unreachable!(),
            };
            let start = guard.payload.leaf_lower_bound(key);
            let mut past_group = false;
            for le in &entries[start..] {
                if le.entry.key == *key {
                    out.push((le.entry.rid, le.pseudo_deleted));
                } else {
                    past_group = true;
                    break;
                }
            }
            if past_group {
                break;
            }
            let Some(np) = next else { break };
            let frame = self.cache.frame(np)?;
            let next_guard = frame.latch.share_arc();
            guard = next_guard;
        }
        Ok(out)
    }
}

/// Find a live-or-pseudo entry in `leaf` with the same key value but a
/// different RID (unique-index conflict). Thanks to the leaf-local
/// group invariant, the leaf alone is authoritative. Prefers a live
/// conflict over a pseudo-deleted one.
fn find_key_conflict(leaf: &Node, entry: &IndexEntry) -> Option<(Rid, bool)> {
    let start = leaf.leaf_lower_bound(&entry.key);
    let mut pseudo_hit: Option<(Rid, bool)> = None;
    for le in &leaf.leaf_entries()[start..] {
        if le.entry.key != entry.key {
            break;
        }
        if le.entry.rid != entry.rid {
            if le.pseudo_deleted {
                pseudo_hit.get_or_insert((le.entry.rid, true));
            } else {
                return Some((le.entry.rid, false));
            }
        }
    }
    pseudo_hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn cfg(unique: bool) -> BTreeConfig {
        BTreeConfig {
            page_size: 256,
            fill_factor: 0.9,
            unique,
            hint_enabled: true,
        }
    }

    fn tree(unique: bool) -> BTree {
        BTree::create(FileId(10), cfg(unique))
    }

    fn e(k: i64, page: u32, slot: u16) -> IndexEntry {
        IndexEntry::from_i64(k, Rid::new(page, slot))
    }

    #[test]
    fn insert_and_lookup_small() {
        let t = tree(false);
        for k in [5i64, 1, 9, 3] {
            assert_eq!(
                t.insert(e(k, 1, k as u16), InsertMode::Transaction)
                    .unwrap(),
                InsertOutcome::Inserted
            );
        }
        assert_eq!(
            t.lookup_exact(&e(5, 1, 5)).unwrap(),
            Some(EntryState {
                pseudo_deleted: false
            })
        );
        assert_eq!(t.lookup_exact(&e(7, 1, 7)).unwrap(), None);
    }

    #[test]
    fn physical_delete_if_live_spares_tombstones() {
        let t = tree(false);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        t.insert(e(7, 1, 2), InsertMode::Transaction).unwrap();
        // 5 gets pseudo-deleted (a committed deleter's tombstone):
        // the conditional delete must leave it in place.
        t.set_pseudo(&e(5, 1, 1), true).unwrap();
        assert!(!t.physical_delete_if_live(&e(5, 1, 1)).unwrap());
        assert_eq!(
            t.lookup_exact(&e(5, 1, 1)).unwrap(),
            Some(EntryState {
                pseudo_deleted: true
            })
        );
        // 7 is live: removed outright.
        assert!(t.physical_delete_if_live(&e(7, 1, 2)).unwrap());
        assert_eq!(t.lookup_exact(&e(7, 1, 2)).unwrap(), None);
        // Absent entries report false.
        assert!(!t.physical_delete_if_live(&e(9, 1, 3)).unwrap());
    }

    #[test]
    fn exact_duplicate_rejected() {
        let t = tree(false);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        assert_eq!(
            t.insert(e(5, 1, 1), InsertMode::Ib).unwrap(),
            InsertOutcome::DuplicateEntry { pseudo: false }
        );
        assert_eq!(t.stats.duplicate_rejects.get(), 1);
    }

    #[test]
    fn nonunique_same_key_different_rid_ok() {
        let t = tree(false);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        assert_eq!(
            t.insert(e(5, 1, 2), InsertMode::Transaction).unwrap(),
            InsertOutcome::Inserted
        );
        let group = t.lookup_key_group(&KeyValue::from_i64(5)).unwrap();
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn unique_conflict_reported_not_inserted() {
        let t = tree(true);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        let out = t.insert(e(5, 2, 2), InsertMode::Transaction).unwrap();
        assert_eq!(
            out,
            InsertOutcome::DuplicateKeyValue {
                existing: Rid::new(1, 1),
                existing_pseudo: false
            }
        );
        assert_eq!(t.lookup_key_group(&KeyValue::from_i64(5)).unwrap().len(), 1);
    }

    #[test]
    fn unique_conflict_with_pseudo_reports_pseudo() {
        let t = tree(true);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        t.set_pseudo(&e(5, 1, 1), true).unwrap();
        let out = t.insert(e(5, 2, 2), InsertMode::Transaction).unwrap();
        assert_eq!(
            out,
            InsertOutcome::DuplicateKeyValue {
                existing: Rid::new(1, 1),
                existing_pseudo: true
            }
        );
    }

    #[test]
    fn unique_replace_swaps_rid() {
        let t = tree(true);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        t.set_pseudo(&e(5, 1, 1), true).unwrap();
        assert!(t
            .unique_replace(&KeyValue::from_i64(5), Rid::new(1, 1), Rid::new(9, 9))
            .unwrap());
        assert_eq!(t.lookup_exact(&e(5, 1, 1)).unwrap(), None);
        assert_eq!(
            t.lookup_exact(&e(5, 9, 9)).unwrap(),
            Some(EntryState {
                pseudo_deleted: false
            })
        );
    }

    #[test]
    fn pseudo_delete_and_reactivate() {
        let t = tree(false);
        t.insert(e(7, 1, 1), InsertMode::Transaction).unwrap();
        assert!(t.pseudo_delete_or_tombstone(&e(7, 1, 1)).unwrap());
        assert_eq!(
            t.lookup_exact(&e(7, 1, 1)).unwrap(),
            Some(EntryState {
                pseudo_deleted: true
            })
        );
        // Insert of the exact pseudo entry is *rejected* (caller must
        // reactivate explicitly).
        assert_eq!(
            t.insert(e(7, 1, 1), InsertMode::Transaction).unwrap(),
            InsertOutcome::DuplicateEntry { pseudo: true }
        );
        assert!(t.set_pseudo(&e(7, 1, 1), false).unwrap());
        assert_eq!(
            t.lookup_exact(&e(7, 1, 1)).unwrap(),
            Some(EntryState {
                pseudo_deleted: false
            })
        );
    }

    #[test]
    fn tombstone_planted_when_absent() {
        let t = tree(false);
        assert!(!t.pseudo_delete_or_tombstone(&e(3, 1, 1)).unwrap());
        assert_eq!(
            t.lookup_exact(&e(3, 1, 1)).unwrap(),
            Some(EntryState {
                pseudo_deleted: true
            })
        );
        assert_eq!(t.stats.tombstones.get(), 1);
    }

    #[test]
    fn physical_delete_removes() {
        let t = tree(false);
        t.insert(e(1, 1, 1), InsertMode::Transaction).unwrap();
        assert!(t.physical_delete(&e(1, 1, 1)).unwrap());
        assert!(!t.physical_delete(&e(1, 1, 1)).unwrap());
        assert_eq!(t.lookup_exact(&e(1, 1, 1)).unwrap(), None);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let t = tree(false);
        let mut keys: Vec<i64> = (0..2000).collect();
        let mut rng = StdRng::seed_from_u64(5);
        keys.shuffle(&mut rng);
        for &k in &keys {
            t.insert(
                e(k, (k / 100) as u32, (k % 100) as u16),
                InsertMode::Transaction,
            )
            .unwrap();
        }
        assert!(t.stats.splits.get() > 10);
        for &k in &keys {
            assert!(t
                .lookup_exact(&e(k, (k / 100) as u32, (k % 100) as u16))
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn ib_mode_uses_hint_for_ascending_keys() {
        let t = tree(false);
        for k in 0..500i64 {
            t.insert(e(k, 1, k as u16), InsertMode::Ib).unwrap();
        }
        assert!(
            t.stats.remembered_hits.get() > 400,
            "hint hits {} too low",
            t.stats.remembered_hits.get()
        );
        assert!(t.stats.traversals.get() < 100);
    }

    #[test]
    fn ib_split_moves_only_higher_keys() {
        // Fill one leaf with interleaved transaction keys, then IB
        // inserts in the middle: the split must move only higher keys.
        let t = tree(false);
        for k in (0..20i64).map(|x| x * 10) {
            t.insert(e(k, 1, k as u16), InsertMode::Transaction)
                .unwrap();
        }
        let splits_before = t.stats.splits.get();
        // Force IB inserts until an IB split happens.
        let mut k = 1i64;
        while t.stats.ib_splits.get() == 0 {
            t.insert(e(k, 2, k as u16), InsertMode::Ib).unwrap();
            k += 2;
        }
        assert_eq!(
            t.stats.splits.get(),
            splits_before,
            "no normal splits by IB"
        );
        // Everything is still sorted & present.
        let group: Vec<i64> = crate::scan::collect_all(&t, true)
            .unwrap()
            .iter()
            .map(|(e, _)| e.key.first_i64().unwrap())
            .collect();
        let mut sorted = group.clone();
        sorted.sort_unstable();
        assert_eq!(group, sorted);
    }

    #[test]
    fn unique_groups_never_split_across_leaves() {
        let t = tree(true);
        // Build a unique tree with several transient pseudo entries of
        // the same key value, forcing splits around them.
        for k in 0..200i64 {
            t.insert(e(k, 1, k as u16), InsertMode::Transaction)
                .unwrap();
        }
        // A burst of tombstones with one key value.
        for slot in 0..4u16 {
            let probe = e(100, 7, slot);
            t.pseudo_delete_or_tombstone(&probe).unwrap();
        }
        for k in 200..400i64 {
            t.insert(e(k, 1, (k % 100) as u16), InsertMode::Transaction)
                .unwrap();
        }
        let group = t.lookup_key_group(&KeyValue::from_i64(100)).unwrap();
        assert_eq!(group.len(), 5); // original + 4 tombstones
        crate::scan::verify_structure(&t).unwrap();
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree(false);
        let big = IndexEntry::new(KeyValue(vec![7u8; 300]), Rid::new(1, 1));
        assert!(t.insert(big, InsertMode::Transaction).is_err());
    }

    #[test]
    fn clear_resets_tree() {
        let t = tree(false);
        for k in 0..100i64 {
            t.insert(e(k, 1, 1), InsertMode::Transaction).unwrap();
        }
        t.clear();
        assert_eq!(t.lookup_exact(&e(5, 1, 1)).unwrap(), None);
        t.insert(e(5, 1, 1), InsertMode::Transaction).unwrap();
        assert!(t.lookup_exact(&e(5, 1, 1)).unwrap().is_some());
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        use std::sync::Arc;
        let t = Arc::new(tree(false));
        let mut handles = Vec::new();
        for th in 0..8u32 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for k in 0..500i64 {
                    t.insert(e(k, th, k as u16), InsertMode::Transaction)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for th in 0..8u32 {
            for k in (0..500i64).step_by(97) {
                assert!(t.lookup_exact(&e(k, th, k as u16)).unwrap().is_some());
            }
        }
        crate::scan::verify_structure(&t).unwrap();
        assert_eq!(crate::scan::collect_all(&t, true).unwrap().len(), 4000);
    }
}
