//! Leaf-chain scans, structural verification and clustering metrics.

use crate::node::Node;
use crate::tree::BTree;
use mohan_common::{Error, IndexEntry, KeyValue, PageId, Result, Rid};

/// Entry probe that sorts before every real entry (routes any descent
/// to the leftmost leaf).
fn min_probe() -> IndexEntry {
    IndexEntry::new(KeyValue::empty(), Rid::MIN)
}

/// Walk the leaf chain left to right, calling `f` for every leaf
/// (share-latch coupling).
pub fn for_each_leaf(tree: &BTree, mut f: impl FnMut(PageId, &Node)) -> Result<()> {
    // Find the leftmost leaf by descending for the minimal probe.
    let probe = min_probe();
    let anchor = tree.cache.frame(PageId(0))?;
    let mut guard = anchor.latch.share_arc();
    let mut page;
    loop {
        let next = match &guard.payload {
            Node::Anchor { root, .. } => *root,
            Node::Internal { children, .. } => children[guard.payload.route(&probe)],
            Node::Leaf { .. } => unreachable!("loop exits on leaves"),
        };
        let frame = tree.cache.frame(next)?;
        let child = frame.latch.share_arc();
        if matches!(child.payload, Node::Leaf { .. }) {
            guard = child;
            page = next;
            break;
        }
        guard = child;
    }
    loop {
        f(page, &guard.payload);
        let next = match &guard.payload {
            Node::Leaf { next, .. } => *next,
            _ => unreachable!(),
        };
        let Some(np) = next else { return Ok(()) };
        let frame = tree.cache.frame(np)?;
        let ng = frame.latch.share_arc();
        guard = ng;
        page = np;
    }
}

/// Collect every entry in key order as `(entry, pseudo_deleted)`.
/// `include_pseudo = false` filters tombstones out (the view a reader
/// of the finished index sees).
pub fn collect_all(tree: &BTree, include_pseudo: bool) -> Result<Vec<(IndexEntry, bool)>> {
    let mut out = Vec::new();
    for_each_leaf(tree, |_, node| {
        for le in node.leaf_entries() {
            if include_pseudo || !le.pseudo_deleted {
                out.push((le.entry.clone(), le.pseudo_deleted));
            }
        }
    })?;
    Ok(out)
}

/// Clustering quality of the leaf level (§4: "consecutive keys being
/// on consecutive pages on disk ... deviations need to be
/// quantified").
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringStats {
    /// Number of leaves.
    pub leaves: u64,
    /// Chain transitions total.
    pub transitions: u64,
    /// Transitions where the right neighbour has a higher page number
    /// (physically ascending, prefetch-friendly).
    pub ascending: u64,
    /// Mean leaf occupancy (bytes used / page size).
    pub avg_occupancy: f64,
    /// Total entries (including pseudo-deleted).
    pub entries: u64,
    /// Pseudo-deleted entries still occupying space.
    pub pseudo_entries: u64,
}

impl ClusteringStats {
    /// Fraction of physically ascending transitions (1.0 = perfectly
    /// clustered, as a bottom-up build produces).
    #[must_use]
    pub fn clustering_ratio(&self) -> f64 {
        if self.transitions == 0 {
            1.0
        } else {
            self.ascending as f64 / self.transitions as f64
        }
    }
}

/// Measure leaf-level clustering.
pub fn clustering(tree: &BTree) -> Result<ClusteringStats> {
    let page_size = tree.config().page_size as f64;
    let mut stats = ClusteringStats {
        leaves: 0,
        transitions: 0,
        ascending: 0,
        avg_occupancy: 0.0,
        entries: 0,
        pseudo_entries: 0,
    };
    let mut occupancy_sum = 0.0;
    let mut prev: Option<PageId> = None;
    for_each_leaf(tree, |page, node| {
        stats.leaves += 1;
        occupancy_sum += node.size() as f64 / page_size;
        for le in node.leaf_entries() {
            stats.entries += 1;
            if le.pseudo_deleted {
                stats.pseudo_entries += 1;
            }
        }
        if let Some(p) = prev {
            stats.transitions += 1;
            if page > p {
                stats.ascending += 1;
            }
        }
        prev = Some(page);
    })?;
    if stats.leaves > 0 {
        stats.avg_occupancy = occupancy_sum / stats.leaves as f64;
    }
    Ok(stats)
}

/// Verify every structural invariant of the tree:
/// * all leaves at the same depth;
/// * entries sorted and unique within and across leaves;
/// * every separator bounds its subtrees;
/// * the leaf chain visits exactly the leaves of the in-order
///   traversal, in order.
pub fn verify_structure(tree: &BTree) -> Result<()> {
    let anchor = tree.cache.frame(PageId(0))?;
    let (root, height) = {
        let g = anchor.latch.share();
        match g.payload {
            Node::Anchor { root, height } => (root, height),
            _ => return Err(Error::Corruption("page 0 is not the anchor".into())),
        }
    };
    let mut leaves_in_order: Vec<PageId> = Vec::new();
    verify_node(tree, root, height, 1, None, None, &mut leaves_in_order)?;

    // The chain must match the in-order leaf sequence.
    let mut chain: Vec<PageId> = Vec::new();
    for_each_leaf(tree, |page, _| chain.push(page))?;
    if chain != leaves_in_order {
        return Err(Error::Corruption(format!(
            "leaf chain {chain:?} disagrees with tree order {leaves_in_order:?}"
        )));
    }

    // Global ordering and exact-entry uniqueness.
    let all = collect_all(tree, true)?;
    for w in all.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(Error::Corruption(format!(
                "entries out of order: {:?} !< {:?}",
                w[0].0, w[1].0
            )));
        }
    }
    Ok(())
}

fn verify_node(
    tree: &BTree,
    page: PageId,
    height: u32,
    depth: u32,
    low: Option<&IndexEntry>,
    high: Option<&IndexEntry>,
    leaves: &mut Vec<PageId>,
) -> Result<()> {
    let frame = tree.cache.frame(page)?;
    let g = frame.latch.share();
    match &g.payload {
        Node::Anchor { .. } => Err(Error::Corruption("anchor inside tree".into())),
        Node::Leaf {
            entries,
            high_fence,
            ..
        } => {
            if depth != height {
                return Err(Error::Corruption(format!(
                    "leaf {page} at depth {depth}, height {height}"
                )));
            }
            if let (Some(f), Some(hi)) = (high_fence, high) {
                if f > hi {
                    return Err(Error::Corruption(format!(
                        "{page}: stored high fence exceeds parent bound"
                    )));
                }
            }
            for le in entries {
                if let Some(f) = high_fence {
                    if le.entry >= *f {
                        return Err(Error::Corruption(format!(
                            "{page}: entry at or above stored high fence"
                        )));
                    }
                }
                if let Some(lo) = low {
                    if le.entry < *lo {
                        return Err(Error::Corruption(format!("{page}: entry below low fence")));
                    }
                }
                if let Some(hi) = high {
                    if le.entry >= *hi {
                        return Err(Error::Corruption(format!("{page}: entry above high fence")));
                    }
                }
            }
            leaves.push(page);
            Ok(())
        }
        Node::Internal { seps, children } => {
            if children.len() != seps.len() + 1 {
                return Err(Error::Corruption(format!("{page}: arity mismatch")));
            }
            for w in seps.windows(2) {
                if w[0] >= w[1] {
                    return Err(Error::Corruption(format!("{page}: separators unsorted")));
                }
            }
            let seps = seps.clone();
            let children = children.clone();
            drop(g);
            for (i, child) in children.iter().enumerate() {
                let lo = if i == 0 { low } else { Some(&seps[i - 1]) };
                let hi = if i == seps.len() {
                    high
                } else {
                    Some(&seps[i])
                };
                verify_node(tree, *child, height, depth + 1, lo, hi, leaves)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{BTreeConfig, InsertMode};
    use mohan_common::FileId;

    fn tree() -> BTree {
        BTree::create(
            FileId(11),
            BTreeConfig {
                page_size: 256,
                fill_factor: 0.9,
                unique: false,
                hint_enabled: true,
            },
        )
    }

    fn e(k: i64) -> IndexEntry {
        IndexEntry::from_i64(k, Rid::new(1, (k % 1000) as u16))
    }

    #[test]
    fn collect_all_is_sorted_and_complete() {
        let t = tree();
        for k in (0..300i64).rev() {
            t.insert(e(k), InsertMode::Transaction).unwrap();
        }
        let all = collect_all(&t, true).unwrap();
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn collect_filters_pseudo() {
        let t = tree();
        for k in 0..10i64 {
            t.insert(e(k), InsertMode::Transaction).unwrap();
        }
        t.pseudo_delete_or_tombstone(&e(4)).unwrap();
        assert_eq!(collect_all(&t, true).unwrap().len(), 10);
        assert_eq!(collect_all(&t, false).unwrap().len(), 9);
    }

    #[test]
    fn verify_accepts_valid_tree() {
        let t = tree();
        for k in 0..1000i64 {
            t.insert(e((k * 37) % 1000), InsertMode::Transaction)
                .unwrap();
        }
        verify_structure(&t).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_tree() {
        let t = tree();
        for k in 0..300i64 {
            t.insert(e(k), InsertMode::Transaction).unwrap();
        }
        // Corrupt a random leaf by reversing its entries.
        let mut victim = None;
        for_each_leaf(&t, |page, node| {
            if node.leaf_entries().len() > 1 && victim.is_none() {
                victim = Some(page);
            }
        })
        .unwrap();
        let frame = t.cache.frame(victim.unwrap()).unwrap();
        {
            let mut g = frame.latch.exclusive();
            if let Node::Leaf { entries, .. } = &mut g.payload {
                entries.reverse();
            }
        }
        assert!(verify_structure(&t).is_err());
    }

    #[test]
    fn ascending_inserts_cluster_perfectly() {
        let t = tree();
        for k in 0..2000i64 {
            t.insert(e(k), InsertMode::Ib).unwrap();
        }
        let c = clustering(&t).unwrap();
        assert!(c.leaves > 10);
        assert!(
            c.clustering_ratio() > 0.95,
            "ratio {} too low for sequential build",
            c.clustering_ratio()
        );
    }

    #[test]
    fn random_inserts_cluster_poorly() {
        let t = tree();
        let mut k = 1i64;
        for _ in 0..2000 {
            k = (k * 48271) % 2_147_483_647; // Lehmer shuffle
            t.insert(e(k), InsertMode::Transaction).unwrap();
        }
        let c = clustering(&t).unwrap();
        assert!(c.leaves > 10);
        assert!(
            c.clustering_ratio() < 0.9,
            "ratio {} suspiciously high for random inserts",
            c.clustering_ratio()
        );
    }

    #[test]
    fn clustering_counts_pseudo_entries() {
        let t = tree();
        for k in 0..50i64 {
            t.insert(e(k), InsertMode::Transaction).unwrap();
        }
        for k in 0..10i64 {
            t.pseudo_delete_or_tombstone(&e(k)).unwrap();
        }
        let c = clustering(&t).unwrap();
        assert_eq!(c.entries, 50);
        assert_eq!(c.pseudo_entries, 10);
    }

    #[test]
    fn empty_tree_scans_cleanly() {
        let t = tree();
        assert!(collect_all(&t, true).unwrap().is_empty());
        verify_structure(&t).unwrap();
        let c = clustering(&t).unwrap();
        assert_eq!(c.leaves, 1);
        assert_eq!(c.clustering_ratio(), 1.0);
    }
}

/// How a range scan schedules its leaf-page reads (§2.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchStrategy {
    /// Sequential prefetch \[TeGu84\]: one I/O fetches a run of
    /// *physically consecutive* pages. Effective exactly when the tree
    /// is clustered (a bottom-up build), which is the paper's case for
    /// SF's clustering advantage.
    PhysicalSequence,
    /// Parent-guided prefetch \[CHHIM91\]: leaf page-ids are read from
    /// the parent pages first, so one I/O can gather any group of
    /// leaves regardless of physical order — "to compensate for
    /// [NSF's] inability to build the index tree bottom-up".
    ParentGuided,
}

/// I/O accounting for one range scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeScanStats {
    /// Live entries returned.
    pub entries: u64,
    /// Leaf pages visited.
    pub leaves: u64,
    /// Simulated leaf I/O batches issued under the chosen strategy.
    pub io_batches: u64,
}

/// Scan all live entries with `lo ≤ key value ≤ hi` in key order,
/// modelling leaf I/O under `strategy` with `prefetch` pages per
/// batch.
pub fn range_scan(
    tree: &BTree,
    lo: &KeyValue,
    hi: &KeyValue,
    prefetch: usize,
    strategy: PrefetchStrategy,
) -> Result<(Vec<IndexEntry>, RangeScanStats)> {
    let prefetch = prefetch.max(1) as u64;
    let mut out = Vec::new();
    let mut pages: Vec<PageId> = Vec::new();

    // Descend to the first leaf that can hold `lo`.
    let probe = IndexEntry::new(lo.clone(), Rid::MIN);
    let anchor = tree.cache.frame(PageId(0))?;
    let mut guard = anchor.latch.share_arc();
    let mut page;
    loop {
        let next = match &guard.payload {
            Node::Anchor { root, .. } => *root,
            Node::Internal { children, .. } => children[guard.payload.route(&probe)],
            Node::Leaf { .. } => unreachable!("loop exits on leaves"),
        };
        let frame = tree.cache.frame(next)?;
        let child = frame.latch.share_arc();
        if matches!(child.payload, Node::Leaf { .. }) {
            guard = child;
            page = next;
            break;
        }
        guard = child;
    }
    // Walk right while the range continues.
    loop {
        pages.push(page);
        let (entries, next) = match &guard.payload {
            Node::Leaf { entries, next, .. } => (entries, *next),
            _ => unreachable!(),
        };
        let mut past_range = false;
        let start = guard.payload.leaf_lower_bound(lo);
        for le in &entries[start..] {
            if le.entry.key > *hi {
                past_range = true;
                break;
            }
            if !le.pseudo_deleted {
                out.push(le.entry.clone());
            }
        }
        if past_range {
            break;
        }
        let Some(np) = next else { break };
        let frame = tree.cache.frame(np)?;
        let ng = frame.latch.share_arc();
        guard = ng;
        page = np;
    }

    // I/O accounting over the visited page sequence.
    let io_batches = match strategy {
        PrefetchStrategy::ParentGuided => {
            pages.len() as u64 / prefetch
                + u64::from(!(pages.len() as u64).is_multiple_of(prefetch) && !pages.is_empty())
        }
        PrefetchStrategy::PhysicalSequence => {
            // One I/O reads a window of `prefetch` *physically
            // consecutive* page numbers; a leaf rides the current
            // window if its page number is ascending and inside it
            // (interleaved internal pages cost window space but not
            // extra I/Os).
            let mut batches = 0u64;
            let mut window_end = 0u64;
            let mut prev: Option<u32> = None;
            for &p in &pages {
                let ascending = prev.is_some_and(|q| p.0 > q);
                if !ascending || u64::from(p.0) >= window_end {
                    batches += 1;
                    window_end = u64::from(p.0) + prefetch;
                }
                prev = Some(p.0);
            }
            batches
        }
    };
    let stats = RangeScanStats {
        entries: out.len() as u64,
        leaves: pages.len() as u64,
        io_batches,
    };
    Ok((out, stats))
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use crate::bulk::BulkLoader;
    use crate::tree::{BTreeConfig, InsertMode};
    use mohan_common::{FileId, Lsn};

    fn cfg() -> BTreeConfig {
        BTreeConfig {
            page_size: 256,
            fill_factor: 0.9,
            unique: false,
            hint_enabled: true,
        }
    }

    fn e(k: i64) -> IndexEntry {
        IndexEntry::from_i64(k, Rid::new((k / 100) as u32, (k % 100) as u16))
    }

    fn k(v: i64) -> KeyValue {
        KeyValue::from_i64(v)
    }

    #[test]
    fn range_scan_returns_exact_window() {
        let t = BTree::create(FileId(20), cfg());
        for key in 0..500i64 {
            t.insert(e(key), InsertMode::Transaction).unwrap();
        }
        let (got, stats) =
            range_scan(&t, &k(100), &k(199), 4, PrefetchStrategy::ParentGuided).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got.first().unwrap().key, k(100));
        assert_eq!(got.last().unwrap().key, k(199));
        assert_eq!(stats.entries, 100);
        assert!(stats.leaves >= 1);
    }

    #[test]
    fn range_scan_skips_pseudo_deleted() {
        let t = BTree::create(FileId(21), cfg());
        for key in 0..50i64 {
            t.insert(e(key), InsertMode::Transaction).unwrap();
        }
        t.pseudo_delete_or_tombstone(&e(25)).unwrap();
        let (got, _) = range_scan(&t, &k(20), &k(29), 4, PrefetchStrategy::ParentGuided).unwrap();
        assert_eq!(got.len(), 9);
        assert!(got.iter().all(|x| x.key != k(25)));
    }

    #[test]
    fn empty_and_out_of_range_windows() {
        let t = BTree::create(FileId(22), cfg());
        let (got, _) = range_scan(&t, &k(0), &k(9), 4, PrefetchStrategy::PhysicalSequence).unwrap();
        assert!(got.is_empty());
        for key in 0..20i64 {
            t.insert(e(key), InsertMode::Transaction).unwrap();
        }
        let (got, _) =
            range_scan(&t, &k(100), &k(200), 4, PrefetchStrategy::PhysicalSequence).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn clustered_tree_needs_few_physical_batches() {
        // Bottom-up build: leaves are physically consecutive.
        let t = BTree::create(FileId(23), cfg());
        let mut bl = BulkLoader::new(&t).unwrap();
        for key in 0..2000i64 {
            bl.append(e(key)).unwrap();
        }
        bl.finish(Lsn::NULL).unwrap();
        let (_, seq) =
            range_scan(&t, &k(0), &k(1999), 8, PrefetchStrategy::PhysicalSequence).unwrap();
        let (_, par) = range_scan(&t, &k(0), &k(1999), 8, PrefetchStrategy::ParentGuided).unwrap();
        let optimal = seq.leaves.div_ceil(8);
        assert_eq!(par.io_batches, optimal);
        // Interleaved internal-page allocations cost window space, so
        // allow a small constant factor over the leaf-only optimum.
        assert!(
            seq.io_batches <= optimal + optimal / 2 + 1,
            "clustered sequential prefetch should be near-optimal: {} vs {}",
            seq.io_batches,
            optimal
        );
    }

    #[test]
    fn unclustered_tree_pays_for_physical_prefetch_but_not_parent_guided() {
        // Random insertion order: splits scatter leaf page numbers.
        let t = BTree::create(FileId(24), cfg());
        let mut key = 1i64;
        for _ in 0..2000 {
            key = (key * 48271) % 2_147_483_647;
            t.insert(e(key % 100_000), InsertMode::Transaction).unwrap();
        }
        let lo = k(0);
        let hi = k(100_000);
        let (_, seq) = range_scan(&t, &lo, &hi, 8, PrefetchStrategy::PhysicalSequence).unwrap();
        let (_, par) = range_scan(&t, &lo, &hi, 8, PrefetchStrategy::ParentGuided).unwrap();
        let optimal = seq.leaves.div_ceil(8);
        assert_eq!(
            par.io_batches, optimal,
            "parent-guided is order-independent"
        );
        assert!(
            seq.io_batches > optimal * 3,
            "unclustered sequential prefetch should degrade: {} vs optimal {}",
            seq.io_batches,
            optimal
        );
    }
}
