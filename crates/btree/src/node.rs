//! Index page (node) representation.
//!
//! Nodes live in a [`mohan_storage::PageCache`] like every other page:
//! a decoded volatile image plus an encoded durable image. Capacity is
//! accounted in *bytes* of encoded entries so variable-length keys
//! split pages realistically.
//!
//! Page 0 of every index file is the **anchor**: it names the root and
//! records the tree height, so the root can move (root splits, bulk
//! loads, checkpoint resets) without any out-of-band metadata.

use mohan_common::{Error, IndexEntry, KeyValue, PageId, Result, Rid};
use mohan_storage::PagePayload;

/// One key in a leaf: the entry plus its pseudo-deleted flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafEntry {
    /// The `<key value, RID>` pair.
    pub entry: IndexEntry,
    /// Logically deleted but physically present (§2.1.2).
    pub pseudo_deleted: bool,
}

impl LeafEntry {
    /// A live entry.
    #[must_use]
    pub fn live(entry: IndexEntry) -> LeafEntry {
        LeafEntry {
            entry,
            pseudo_deleted: false,
        }
    }

    /// A tombstone.
    #[must_use]
    pub fn tombstone(entry: IndexEntry) -> LeafEntry {
        LeafEntry {
            entry,
            pseudo_deleted: true,
        }
    }

    /// Encoded size contribution (entry bytes + flag).
    #[must_use]
    pub fn size(&self) -> usize {
        self.entry.encoded_size() + 1
    }
}

/// An index page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// The anchor page (always page 0).
    Anchor {
        /// Current root page.
        root: PageId,
        /// Tree height (1 = root is a leaf).
        height: u32,
    },
    /// Interior page: `children.len() == seps.len() + 1`; subtree `i`
    /// holds entries `< seps[i]` (and `≥ seps[i-1]`).
    Internal {
        /// Separator entries.
        seps: Vec<IndexEntry>,
        /// Child pages.
        children: Vec<PageId>,
    },
    /// Leaf page with a forward chain pointer.
    Leaf {
        /// Sorted entries.
        entries: Vec<LeafEntry>,
        /// Next leaf to the right.
        next: Option<PageId>,
        /// Upper bound of this leaf's key range, fixed at split time
        /// (`None` = rightmost leaf). Unlike the right sibling's
        /// current first entry, the fence never moves when entries are
        /// physically deleted, which makes the remembered-path hint's
        /// containment check sound.
        high_fence: Option<IndexEntry>,
    },
}

impl Node {
    /// Empty leaf.
    #[must_use]
    pub fn empty_leaf() -> Node {
        Node::Leaf {
            entries: Vec::new(),
            next: None,
            high_fence: None,
        }
    }

    /// Byte occupancy for capacity accounting.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Node::Anchor { .. } => 16,
            Node::Internal { seps, children } => {
                seps.iter().map(IndexEntry::encoded_size).sum::<usize>() + children.len() * 4
            }
            Node::Leaf {
                entries,
                high_fence,
                ..
            } => {
                entries.iter().map(LeafEntry::size).sum::<usize>()
                    + 8
                    + high_fence.as_ref().map_or(0, IndexEntry::encoded_size)
            }
        }
    }

    /// Leaf entries (panics on non-leaves; internal use).
    #[must_use]
    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match self {
            Node::Leaf { entries, .. } => entries,
            _ => panic!("not a leaf"),
        }
    }

    /// Position of `entry` in a leaf, or where it would insert.
    pub fn leaf_search(&self, entry: &IndexEntry) -> std::result::Result<usize, usize> {
        match self {
            Node::Leaf { entries, .. } => entries.binary_search_by(|le| le.entry.cmp(entry)),
            _ => panic!("not a leaf"),
        }
    }

    /// First leaf position whose key value is ≥ `key` (unique-check
    /// and range-scan start).
    #[must_use]
    pub fn leaf_lower_bound(&self, key: &KeyValue) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.partition_point(|le| le.entry.key < *key),
            _ => panic!("not a leaf"),
        }
    }

    /// Child index to follow for `entry` in an internal node.
    #[must_use]
    pub fn route(&self, entry: &IndexEntry) -> usize {
        match self {
            Node::Internal { seps, .. } => seps.partition_point(|s| s <= entry),
            _ => panic!("not internal"),
        }
    }

    /// Child index to follow for the *smallest entry with key value*
    /// `key` (i.e. `<key, RID::MIN>`).
    #[must_use]
    pub fn route_key(&self, key: &KeyValue) -> usize {
        let probe = IndexEntry::new(key.clone(), Rid::MIN);
        self.route(&probe)
    }
}

const TAG_ANCHOR: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    if buf.len() < *pos + 4 {
        return Err(Error::Corruption("truncated node".into()));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[*pos..*pos + 4]);
    *pos += 4;
    Ok(u32::from_be_bytes(b))
}

impl PagePayload for Node {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Node::Anchor { root, height } => {
                out.push(TAG_ANCHOR);
                push_u32(out, root.0);
                push_u32(out, *height);
            }
            Node::Internal { seps, children } => {
                out.push(TAG_INTERNAL);
                push_u32(out, seps.len() as u32);
                for s in seps {
                    s.encode(out);
                }
                push_u32(out, children.len() as u32);
                for c in children {
                    push_u32(out, c.0);
                }
            }
            Node::Leaf {
                entries,
                next,
                high_fence,
            } => {
                out.push(TAG_LEAF);
                push_u32(out, entries.len() as u32);
                for le in entries {
                    out.push(u8::from(le.pseudo_deleted));
                    le.entry.encode(out);
                }
                match next {
                    Some(p) => {
                        out.push(1);
                        push_u32(out, p.0);
                    }
                    None => out.push(0),
                }
                match high_fence {
                    Some(f) => {
                        out.push(1);
                        f.encode(out);
                    }
                    None => out.push(0),
                }
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let mut pos = 0;
        let tag = *buf
            .first()
            .ok_or_else(|| Error::Corruption("empty node".into()))?;
        pos += 1;
        match tag {
            TAG_ANCHOR => {
                let root = PageId(read_u32(buf, &mut pos)?);
                let height = read_u32(buf, &mut pos)?;
                Ok(Node::Anchor { root, height })
            }
            TAG_INTERNAL => {
                let n = read_u32(buf, &mut pos)? as usize;
                let mut seps = Vec::with_capacity(n);
                for _ in 0..n {
                    seps.push(
                        IndexEntry::decode(buf, &mut pos)
                            .ok_or_else(|| Error::Corruption("bad separator".into()))?,
                    );
                }
                let c = read_u32(buf, &mut pos)? as usize;
                let mut children = Vec::with_capacity(c);
                for _ in 0..c {
                    children.push(PageId(read_u32(buf, &mut pos)?));
                }
                Ok(Node::Internal { seps, children })
            }
            TAG_LEAF => {
                let n = read_u32(buf, &mut pos)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let pseudo = *buf
                        .get(pos)
                        .ok_or_else(|| Error::Corruption("truncated leaf".into()))?
                        != 0;
                    pos += 1;
                    entries.push(LeafEntry {
                        pseudo_deleted: pseudo,
                        entry: IndexEntry::decode(buf, &mut pos)
                            .ok_or_else(|| Error::Corruption("bad leaf entry".into()))?,
                    });
                }
                let next = match buf.get(pos) {
                    Some(0) => {
                        pos += 1;
                        None
                    }
                    Some(1) => {
                        pos += 1;
                        Some(PageId(read_u32(buf, &mut pos)?))
                    }
                    _ => return Err(Error::Corruption("bad next pointer".into())),
                };
                let high_fence = match buf.get(pos) {
                    Some(0) => None,
                    Some(1) => {
                        pos += 1;
                        Some(
                            IndexEntry::decode(buf, &mut pos)
                                .ok_or_else(|| Error::Corruption("bad fence".into()))?,
                        )
                    }
                    _ => return Err(Error::Corruption("bad fence tag".into())),
                };
                Ok(Node::Leaf {
                    entries,
                    next,
                    high_fence,
                })
            }
            _ => Err(Error::Corruption(format!("unknown node tag {tag}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: i64, slot: u16) -> IndexEntry {
        IndexEntry::from_i64(k, Rid::new(1, slot))
    }

    #[test]
    fn anchor_roundtrip() {
        let n = Node::Anchor {
            root: PageId(7),
            height: 3,
        };
        let mut b = Vec::new();
        n.encode(&mut b);
        assert_eq!(Node::decode(&b).unwrap(), n);
    }

    #[test]
    fn internal_roundtrip_and_route() {
        let n = Node::Internal {
            seps: vec![e(10, 0), e(20, 0)],
            children: vec![PageId(1), PageId(2), PageId(3)],
        };
        let mut b = Vec::new();
        n.encode(&mut b);
        assert_eq!(Node::decode(&b).unwrap(), n);
        assert_eq!(n.route(&e(5, 0)), 0);
        assert_eq!(n.route(&e(10, 0)), 1); // seps[i] <= entry goes right
        assert_eq!(n.route(&e(15, 0)), 1);
        assert_eq!(n.route(&e(25, 0)), 2);
    }

    #[test]
    fn leaf_roundtrip_with_flags() {
        let n = Node::Leaf {
            entries: vec![LeafEntry::live(e(1, 1)), LeafEntry::tombstone(e(2, 2))],
            next: Some(PageId(9)),
            high_fence: Some(e(5, 0)),
        };
        let mut b = Vec::new();
        n.encode(&mut b);
        assert_eq!(Node::decode(&b).unwrap(), n);
    }

    #[test]
    fn leaf_search_and_lower_bound() {
        let n = Node::Leaf {
            entries: vec![
                LeafEntry::live(e(5, 1)),
                LeafEntry::live(e(5, 3)),
                LeafEntry::live(e(8, 0)),
            ],
            next: None,
            high_fence: None,
        };
        assert_eq!(n.leaf_search(&e(5, 3)), Ok(1));
        assert_eq!(n.leaf_search(&e(5, 2)), Err(1));
        assert_eq!(n.leaf_lower_bound(&KeyValue::from_i64(5)), 0);
        assert_eq!(n.leaf_lower_bound(&KeyValue::from_i64(6)), 2);
        assert_eq!(n.leaf_lower_bound(&KeyValue::from_i64(9)), 3);
    }

    #[test]
    fn route_key_targets_smallest_rid() {
        let n = Node::Internal {
            // Separator is <10, rid 5.5>; a key-value search for 10
            // must go LEFT of it to find possible smaller RIDs.
            seps: vec![IndexEntry::from_i64(10, Rid::new(5, 5))],
            children: vec![PageId(1), PageId(2)],
        };
        assert_eq!(n.route_key(&KeyValue::from_i64(10)), 0);
        assert_eq!(n.route_key(&KeyValue::from_i64(11)), 1);
    }

    #[test]
    fn size_accounts_entries() {
        let empty = Node::empty_leaf();
        let one = Node::Leaf {
            entries: vec![LeafEntry::live(e(1, 1))],
            next: None,
            high_fence: None,
        };
        assert!(one.size() > empty.size());
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[99]).is_err());
        assert!(Node::decode(&[TAG_LEAF, 0, 0, 0, 1]).is_err());
    }
}
