//! B+-tree index with the paper's key-state machinery.
//!
//! Keys are `<key value, RID>` entries. Every key carries a 1-bit
//! **pseudo-deleted** flag (§2.1.2): a deleter marks the key rather
//! than removing it, leaving a trail that makes the index builder's
//! later insert of the same key rejectable. The tree supports:
//!
//! * duplicate-entry rejection (exact `<key value, RID>` match for a
//!   nonunique index; key-value match for a unique one, §2.2.3);
//! * the NSF builder's **specialized split** — move only the keys
//!   *higher* than the one being inserted, mimicking a bottom-up build
//!   (§2.3.1);
//! * a **remembered-path** insert hint so the builder avoids
//!   root-to-leaf traversals on consecutive keys (§2.2.3);
//! * a checkpointable **bottom-up bulk loader** for SF, whose restart
//!   resets the index so "the keys higher than the checkpointed key
//!   disappear" (§3.2.4);
//! * leaf-chain scans, structural verification and the clustering
//!   statistics experiment E4 reports.
//!
//! Latching: descents crab from an anchor page (which names the root)
//! downward — share mode for reads, exclusive for updates, releasing
//! ancestors as soon as the child cannot split. No transaction locks
//! are taken here; that is the engine's business.

#![warn(missing_docs)]

pub mod bulk;
pub mod node;
pub mod scan;
pub mod tree;

pub use bulk::{BulkCheckpoint, BulkLoader};
pub use node::{LeafEntry, Node};
pub use scan::{ClusteringStats, PrefetchStrategy, RangeScanStats};
pub use tree::{BTree, BTreeConfig, BTreeStats, EntryState, InsertMode, InsertOutcome};
