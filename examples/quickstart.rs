//! Quickstart: create a table, load it, build an index **online**
//! with the SF algorithm, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use online_index_build::prelude::*;

fn main() -> Result<()> {
    let db = Db::new(EngineConfig::default());
    let table = TableId(1);
    db.create_table(table);

    // Load 10,000 rows: (key, payload).
    println!("loading 10,000 rows ...");
    let tx = db.begin();
    for k in 0..10_000 {
        db.insert_record(tx, table, &Record::new(vec![k, k * 3]))?;
    }
    db.commit(tx)?;

    // Build a secondary index with the Side-File algorithm: no quiesce
    // at any point — concurrent transactions would go to the side-file
    // while the builder scans, sorts and bulk-loads.
    println!("building index by payload (SF, online) ...");
    let idx = build_index(
        &db,
        table,
        IndexSpec {
            name: "by_payload".into(),
            key_cols: vec![1],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )?;

    // Query through the index.
    let hits = db.index_lookup(idx, &KeyValue::from_i64(300))?;
    println!("payload 300 found at {} record(s): {:?}", hits.len(), hits);
    let rec = db.read_record(table, hits[0])?;
    println!("record contents: {:?}", rec.0);

    // The index stays maintained by ordinary DML.
    let tx = db.begin();
    let rid = db.insert_record(tx, table, &Record::new(vec![999_999, 424_242]))?;
    db.commit(tx)?;
    assert_eq!(
        db.index_lookup(idx, &KeyValue::from_i64(424_242))?,
        vec![rid]
    );

    // Prove it exact against the table.
    verify_index(&db, idx)?;
    println!("index verified entry-for-entry against the table ✓");
    Ok(())
}
