//! Quickstart: create a table, load it, build an index **online**
//! with the SF algorithm, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use online_index_build::prelude::*;

fn main() -> Result<()> {
    let db = Db::new(EngineConfig::default());
    let table = TableId(1);
    db.create_table(table);

    // A Session is the same statement API a TCP connection gets: one
    // open transaction at most, auto-commit when none is open.
    let mut session = Session::new(db.clone());

    // Load 10,000 rows: (key, payload), one explicit transaction.
    println!("loading 10,000 rows ...");
    session.begin()?;
    for k in 0..10_000 {
        session.insert(table, &Record::new(vec![k, k * 3]))?;
    }
    session.commit()?;

    // Build a secondary index with the Side-File algorithm: no quiesce
    // at any point — concurrent transactions would go to the side-file
    // while the builder scans, sorts and bulk-loads.
    println!("building index by payload (SF, online) ...");
    let idx = session.create_index(
        table,
        IndexSpec {
            name: "by_payload".into(),
            key_cols: vec![1],
            unique: false,
        },
        BuildAlgorithm::Sf,
    )?;

    // Query through the index.
    let hits = session.lookup(idx, &KeyValue::from_i64(300))?;
    println!("payload 300 found at {} record(s): {:?}", hits.len(), hits);
    let rec = session.read(table, hits[0])?;
    println!("record contents: {:?}", rec.0);

    // The index stays maintained by ordinary DML (auto-commit here).
    let rid = session.insert(table, &Record::new(vec![999_999, 424_242]))?;
    assert_eq!(
        session.lookup(idx, &KeyValue::from_i64(424_242))?,
        vec![rid]
    );

    // Prove it exact against the table.
    verify_index(&db, idx)?;
    println!("index verified entry-for-entry against the table ✓");
    Ok(())
}
