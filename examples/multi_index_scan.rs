//! §6.2 extensions in action: build three indexes in ONE scan of the
//! data, then build another secondary by scanning the clustering
//! primary index with the current-key cursor.
//!
//! ```text
//! cargo run --example multi_index_scan
//! ```

use online_index_build::prelude::*;

fn main() -> Result<()> {
    let db = Db::new(EngineConfig::default());
    let table = TableId(1);
    db.create_table(table);

    // events(event_id, device, severity)
    println!("loading 15,000 events ...");
    let tx = db.begin();
    for k in 0..15_000 {
        db.insert_record(tx, table, &Record::new(vec![k, k % 200, k % 5]))?;
    }
    db.commit(tx)?;

    // Three indexes, one data scan (§6.2: "it would be very beneficial
    // to build multiple indexes in one data scan").
    let pages_before = db.table(table)?.stats.scan_pages.get();
    let ids = build_indexes(
        &db,
        table,
        &[
            IndexSpec {
                name: "pk".into(),
                key_cols: vec![0],
                unique: true,
            },
            IndexSpec {
                name: "by_device".into(),
                key_cols: vec![1],
                unique: false,
            },
            IndexSpec {
                name: "by_severity_device".into(),
                key_cols: vec![2, 1],
                unique: false,
            },
        ],
        BuildAlgorithm::Sf,
    )?;
    let pages = db.table(table)?.stats.scan_pages.get() - pages_before;
    println!(
        "built {} indexes reading {} data pages (table has {}) — one scan, not three",
        ids.len(),
        pages,
        db.table(table)?.num_pages()
    );
    assert_eq!(verify_all(&db, table)?, 3);

    // Storage-model extension: scan the clustering primary index (in
    // key order) to build yet another secondary; visibility uses a
    // current-*key* cursor instead of Current-RID.
    println!("building a fourth index by scanning the primary index ...");
    let fourth = build_secondary_via_primary(
        &db,
        ids[0],
        IndexSpec {
            name: "by_severity".into(),
            key_cols: vec![2],
            unique: false,
        },
    )?;
    verify_index(&db, fourth)?;

    // Use them.
    let device_42 = db.index_lookup(ids[1], &KeyValue::from_i64(42))?;
    let sev_3 = db.index_lookup(fourth, &KeyValue::from_i64(3))?;
    println!(
        "device 42 has {} events; severity 3 has {} events",
        device_42.len(),
        sev_3.len()
    );
    println!("all four indexes verified ✓");
    Ok(())
}
