//! The paper's motivating scenario (§1): an `orders` table serving a
//! live OLTP workload needs a new secondary index, and taking the
//! table offline for the build "may become unacceptable".
//!
//! This example runs three OLTP threads against the table and builds
//! the same index three ways — offline (the pre-1992 baseline), NSF
//! and SF — printing how much update throughput survived each build
//! window.
//!
//! ```text
//! cargo run --release --example online_migration
//! ```

use online_index_build::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ORDERS: TableId = TableId(1);

/// A minimal OLTP thread: new orders arrive, old orders are amended
/// or cancelled. Throttled so the single-core build doesn't starve it.
fn oltp_thread(
    db: Arc<Db>,
    stop: Arc<AtomicBool>,
    committed: Arc<AtomicU64>,
    thread_no: i64,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut order_no = 1_000_000 * (thread_no + 1);
        let mut open_orders: Vec<Rid> = Vec::new();
        while !stop.load(Ordering::Relaxed) {
            let tx = db.begin();
            order_no += 1;
            // order = (order_no, customer, amount)
            let rec = Record::new(vec![order_no, order_no % 500, order_no % 10_000]);
            let ok = match db.insert_record(tx, ORDERS, &rec) {
                Ok(rid) => {
                    open_orders.push(rid);
                    if open_orders.len() > 64 {
                        let victim = open_orders.remove(0);
                        db.delete_record(tx, ORDERS, victim).is_ok()
                    } else {
                        true
                    }
                }
                Err(_) => false,
            };
            if ok && db.commit(tx).is_ok() {
                committed.fetch_add(1, Ordering::Relaxed);
            } else {
                let _ = db.rollback(tx);
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    })
}

fn run_scenario(algorithm: BuildAlgorithm) -> Result<()> {
    let db = Db::new(EngineConfig {
        lock_timeout_ms: 30_000,
        ..EngineConfig::default()
    });
    db.create_table(ORDERS);

    // Historical orders.
    let tx = db.begin();
    for k in 0..40_000 {
        db.insert_record(tx, ORDERS, &Record::new(vec![k, k % 500, k % 10_000]))?;
    }
    db.commit(tx)?;

    // Live traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..3)
        .map(|i| {
            oltp_thread(
                Arc::clone(&db),
                Arc::clone(&stop),
                Arc::clone(&committed),
                i,
            )
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // The migration: CREATE INDEX orders_by_customer.
    let before = committed.load(Ordering::Relaxed);
    let started = Instant::now();
    let idx = build_index(
        &db,
        ORDERS,
        IndexSpec {
            name: "orders_by_customer".into(),
            key_cols: vec![1],
            unique: false,
        },
        algorithm,
    )?;
    let window = started.elapsed();
    let during = committed.load(Ordering::Relaxed) - before;

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker");
    }
    verify_index(&db, idx)?;

    println!(
        "{algorithm:?}: build window {:>7.1?}, {during:>5} orders committed during it ({:.0} tx/s) — verified ✓",
        window,
        during as f64 / window.as_secs_f64().max(1e-9),
    );
    Ok(())
}

fn main() -> Result<()> {
    println!("CREATE INDEX on a live `orders` table, three ways:\n");
    for algorithm in [
        BuildAlgorithm::Offline,
        BuildAlgorithm::Nsf,
        BuildAlgorithm::Sf,
    ] {
        run_scenario(algorithm)?;
    }
    println!("\nOffline blocks the OLTP threads for the whole window;");
    println!("NSF pauses them only to create the descriptor; SF never does.");
    Ok(())
}
