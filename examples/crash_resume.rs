//! Restartability demo (§2.2.3, §3.2.4, §5): kill the index builder
//! at three different phases, run ARIES restart recovery, resume the
//! build from its checkpoints, and verify the result — without
//! redoing all the work.
//!
//! ```text
//! cargo run --example crash_resume
//! ```

use online_index_build::prelude::*;

fn main() -> Result<()> {
    let db = Db::new(EngineConfig {
        // Small checkpoint intervals so each crash loses little work.
        sort_checkpoint_every_keys: 2_000,
        ib_checkpoint_every_keys: 2_000,
        ..EngineConfig::default()
    });
    let table = TableId(1);
    db.create_table(table);

    println!("loading 20,000 rows ...");
    let tx = db.begin();
    for k in 0..20_000 {
        db.insert_record(tx, table, &Record::new(vec![k, k % 97]))?;
    }
    db.commit(tx)?;

    // Crash #1: during the data-page scan / sort phase.
    println!("starting SF build; system failure during the scan ...");
    db.failpoints.arm_after("build.scan", 2);
    let err = build_index(
        &db,
        table,
        IndexSpec {
            name: "by_key".into(),
            key_cols: vec![0],
            unique: true,
        },
        BuildAlgorithm::Sf,
    )
    .expect_err("the armed failpoint kills the build");
    assert!(err.is_crash());
    println!("  -> {err}");

    db.simulate_crash();
    let stats = db.restart()?;
    println!(
        "restart recovery: {} records analyzed, {} redone, {} loser tx",
        stats.analyzed, stats.redone, stats.losers
    );
    let id = db
        .indexes_of(table)
        .last()
        .expect("descriptor survives")
        .def
        .id;

    // Crash #2: during the bottom-up load.
    println!("resuming; system failure during the bulk load ...");
    db.failpoints.arm("build.load");
    let err = resume_build(&db, id).expect_err("second crash");
    assert!(err.is_crash());
    db.simulate_crash();
    db.restart()?;

    // Crash #3: during the side-file drain (populate it first so the
    // drain has work: after a crash every update is side-file
    // visible).
    println!("making 200 updates that land in the side-file ...");
    let tx = db.begin();
    for k in 0..200 {
        db.insert_record(tx, table, &Record::new(vec![100_000 + k, 1]))?;
    }
    db.commit(tx)?;
    println!("resuming; system failure during the drain ...");
    db.failpoints.arm_after("sf.drain.op", 50);
    match resume_build(&db, id) {
        Err(e) if e.is_crash() => {
            println!("  -> {e}");
            db.simulate_crash();
            db.restart()?;
        }
        other => {
            other?;
        }
    }

    // Final resume completes the build.
    println!("final resume ...");
    resume_build(&db, id)?;
    assert_eq!(db.index(id).unwrap().state(), IndexState::Complete);
    verify_index(&db, id)?;
    println!("index complete and verified after three crashes ✓");

    // The finished unique index enforces its constraint.
    let tx = db.begin();
    let dup = db.insert_record(tx, table, &Record::new(vec![5, 0]));
    assert!(matches!(dup, Err(Error::UniqueViolation { .. })));
    db.rollback(tx)?;
    println!("unique constraint live: duplicate key 5 rejected ✓");
    Ok(())
}
